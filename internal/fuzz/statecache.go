package fuzz

import (
	"encoding/binary"
	"hash/fnv"

	"mufuzz/internal/evm"
	"mufuzz/internal/state"
)

// prefixCache memoizes the world state reached after executing a sequence
// prefix, so a mutated child that shares a prefix with an earlier execution
// can resume from the checkpoint instead of re-running every transaction.
//
// This implements the improvement the paper sketches in §VI ("not to
// re-execute the previous transactions, but to move directly to some
// intermediate state"). Entries capture everything semantically relevant:
// the post-prefix state, the cross-transaction storage taint, and the branch
// events of the prefix (replayed into the campaign's feedback fold so
// coverage/distance bookkeeping is identical to a full execution).
type prefixCache struct {
	entries map[uint64]*prefixEntry
	order   []uint64 // FIFO eviction order
	max     int
	hits    int
	misses  int
}

type prefixEntry struct {
	// txs is the prefix length the entry checkpoints.
	txs int
	// st is the world state after the prefix (committed).
	st *state.State
	// taint is the EVM's cross-transaction storage taint after the prefix.
	taint map[evm.StorageKey]evm.Taint
	// branchesByTx are the contract's branch events of the prefix, one batch
	// per transaction, so the feedback fold (per-transaction weight traces)
	// sees exactly what a re-execution would produce.
	branchesByTx [][]evm.BranchEvent
	// nestedDepth is the deepest branch-site nesting reached in the prefix.
	nestedDepth int
}

func newPrefixCache(max int) *prefixCache {
	return &prefixCache{entries: make(map[uint64]*prefixEntry), max: max}
}

// hashPrefix fingerprints the first n transactions of a sequence.
func hashPrefix(seq Sequence, n int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < n && i < len(seq); i++ {
		tx := seq[i]
		h.Write([]byte(tx.Func))
		h.Write([]byte{0})
		h.Write(tx.Args)
		v := tx.Value.Bytes32()
		h.Write(v[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(tx.Sender))
		h.Write(buf[:])
		h.Write([]byte{0xfe})
	}
	return h.Sum64()
}

// lookup returns the entry for the longest cached proper prefix of seq
// (at least 1 transaction, at most len(seq)-1 so the suffix still runs).
func (pc *prefixCache) lookup(seq Sequence) *prefixEntry {
	if pc == nil {
		return nil
	}
	for n := len(seq) - 1; n >= 1; n-- {
		if e, ok := pc.entries[hashPrefix(seq, n)]; ok && e.txs == n {
			pc.hits++
			return e
		}
	}
	pc.misses++
	return nil
}

// contains reports whether a prefix hash is already checkpointed.
func (pc *prefixCache) contains(key uint64) bool {
	if pc == nil {
		return false
	}
	_, ok := pc.entries[key]
	return ok
}

// storeKeyed records a checkpoint for a pre-computed prefix hash.
// Oversized branch logs are not cached (loop-heavy prefixes would make
// replaying the fold as costly as re-execution).
func (pc *prefixCache) storeKeyed(key uint64, n int, st *state.State, taint map[evm.StorageKey]evm.Taint, branchesByTx [][]evm.BranchEvent, nestedDepth int) {
	if pc == nil || n < 1 {
		return
	}
	total := 0
	for _, b := range branchesByTx {
		total += len(b)
	}
	if total > 4096 {
		return
	}
	if _, dup := pc.entries[key]; dup {
		return
	}
	if len(pc.order) >= pc.max {
		oldest := pc.order[0]
		pc.order = pc.order[1:]
		delete(pc.entries, oldest)
	}
	cp := make([][]evm.BranchEvent, len(branchesByTx))
	for i, b := range branchesByTx {
		cp[i] = append([]evm.BranchEvent(nil), b...)
	}
	pc.entries[key] = &prefixEntry{
		txs:          n,
		st:           st,
		taint:        taint,
		branchesByTx: cp,
		nestedDepth:  nestedDepth,
	}
	pc.order = append(pc.order, key)
}

// Stats reports cache hits and misses.
func (pc *prefixCache) stats() (hits, misses int) {
	if pc == nil {
		return 0, 0
	}
	return pc.hits, pc.misses
}
