package fuzz

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"mufuzz/internal/evm"
	"mufuzz/internal/state"
)

// prefixCache memoizes the world state reached after executing a sequence
// prefix, so a mutated child that shares a prefix with an earlier execution
// can resume from the checkpoint instead of re-running every transaction.
//
// This implements the improvement the paper sketches in §VI ("not to
// re-execute the previous transactions, but to move directly to some
// intermediate state"). Entries capture everything semantically relevant:
// the post-prefix state, the cross-transaction storage taint, and the branch
// events of the prefix (replayed into the campaign's feedback fold so
// coverage/distance bookkeeping is identical to a full execution).
//
// The cache is striped across prefixShards independently locked shards so
// the executor goroutines of a parallel campaign can look up checkpoints and
// propose inserts concurrently. Entries are immutable once stored: readers
// copy entry.st outside the shard lock, writers only ever insert or evict
// whole entries. Eviction is FIFO per shard.
type prefixCache struct {
	shards [prefixShards]prefixShard
	hits   atomic.Int64
	misses atomic.Int64
}

// prefixShards is the stripe count. Sixteen shards keep lock contention
// negligible for any realistic Options.Workers while costing only a few
// hundred bytes of overhead.
const prefixShards = 16

type prefixShard struct {
	mu      sync.RWMutex
	entries map[uint64]*prefixEntry
	order   []uint64 // FIFO eviction order
	max     int      // per-shard capacity
}

type prefixEntry struct {
	// txs is the prefix length the entry checkpoints.
	txs int
	// st is the world state after the prefix (committed). Never mutated
	// after store; resuming executions copy it.
	st *state.State
	// taint is the EVM's cross-transaction storage taint after the prefix.
	taint map[evm.StorageKey]evm.Taint
	// branchesByTx are the contract's branch events of the prefix, one batch
	// per transaction, so the feedback fold (per-transaction weight traces)
	// sees exactly what a re-execution would produce.
	branchesByTx [][]evm.BranchEvent
	// reports are the prefix transactions' oracle reports, replayed into the
	// outcome on a hit. Absorption is idempotent on the coordinator, so the
	// replay is a semantic no-op for a sequential campaign — but it makes
	// every outcome self-contained, which keeps proof-of-concept capture
	// deterministic in batched mode regardless of which worker happened to
	// populate the cache first.
	reports []txReport
	// nestedDepth is the deepest branch-site nesting reached in the prefix.
	nestedDepth int
}

// newPrefixCache builds a cache holding about max entries in total, striped
// evenly across the shards.
func newPrefixCache(max int) *prefixCache {
	perShard := (max + prefixShards - 1) / prefixShards
	if perShard < 1 {
		perShard = 1
	}
	pc := &prefixCache{}
	for i := range pc.shards {
		pc.shards[i].entries = make(map[uint64]*prefixEntry)
		pc.shards[i].max = perShard
	}
	return pc
}

func (pc *prefixCache) shard(key uint64) *prefixShard {
	return &pc.shards[key%prefixShards]
}

// fnv-1a, hand-rolled: the stdlib hash.Hash64 interface costs an allocation
// and a virtual call per Write, and the hot path hashes every prefix of every
// sequence per execution.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvAdd(h uint64, p []byte) uint64 {
	for _, c := range p {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

func fnvAddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvAddByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// hashTx folds one transaction into a running prefix hash.
func hashTx(h uint64, tx *TxInput) uint64 {
	h = fnvAddString(h, tx.Func)
	h = fnvAddByte(h, 0)
	h = fnvAdd(h, tx.Args)
	v := tx.Value.Bytes32()
	h = fnvAdd(h, v[:])
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(tx.Sender))
	h = fnvAdd(h, buf[:])
	return fnvAddByte(h, 0xfe)
}

// hashPrefix fingerprints the first n transactions of a sequence.
func hashPrefix(seq Sequence, n int) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < n && i < len(seq); i++ {
		h = hashTx(h, &seq[i])
	}
	return h
}

// prefixHashes computes the keys of every proper prefix of seq in one pass:
// out[k] is hashPrefix(seq, k+1) for k in [0, len(seq)-2]. The hash is a pure
// running fold over transactions, so all prefixes cost one sequence walk —
// the per-execution lookup and store-policy scans reuse the same table
// instead of rehashing O(n²) bytes. buf is an optional reusable backing.
func prefixHashes(seq Sequence, buf []uint64) []uint64 {
	if len(seq) < 2 {
		return buf[:0]
	}
	out := buf[:0]
	h := uint64(fnvOffset64)
	for i := 0; i < len(seq)-1; i++ {
		h = hashTx(h, &seq[i])
		out = append(out, h)
	}
	return out
}

// lookup returns the entry for the longest cached proper prefix of seq
// (at least 1 transaction, at most len(seq)-1 so the suffix still runs).
// The txs check guards against fnv collisions across prefix lengths: a hit
// only counts when the stored entry checkpoints exactly n transactions.
func (pc *prefixCache) lookup(seq Sequence) *prefixEntry {
	if pc == nil {
		return nil
	}
	return pc.lookupHashed(prefixHashes(seq, nil))
}

// lookupHashed is lookup over a precomputed prefix-hash table (hashes[k] is
// the key of the k+1-transaction prefix, as built by prefixHashes).
func (pc *prefixCache) lookupHashed(hashes []uint64) *prefixEntry {
	if pc == nil {
		return nil
	}
	for n := len(hashes); n >= 1; n-- {
		key := hashes[n-1]
		sh := pc.shard(key)
		sh.mu.RLock()
		e, ok := sh.entries[key]
		sh.mu.RUnlock()
		if ok && e.txs == n {
			pc.hits.Add(1)
			return e
		}
	}
	pc.misses.Add(1)
	return nil
}

// contains reports whether a prefix hash is already checkpointed.
func (pc *prefixCache) contains(key uint64) bool {
	if pc == nil {
		return false
	}
	sh := pc.shard(key)
	sh.mu.RLock()
	_, ok := sh.entries[key]
	sh.mu.RUnlock()
	return ok
}

// admissible reports whether a prefix's branch log is small enough to
// cache. Oversized logs are not cached (loop-heavy prefixes would make
// replaying the fold as costly as re-execution); callers should check this
// BEFORE materializing the state fork and taint snapshot a store needs, or
// an inadmissible prefix pays that cost on every execution forever (its key
// never enters the cache, so the contains() pre-check never short-circuits).
func (pc *prefixCache) admissible(branchesByTx [][]evm.BranchEvent) bool {
	total := 0
	for _, b := range branchesByTx {
		total += len(b)
	}
	return total <= 4096
}

// storeKeyed records a checkpoint for a pre-computed prefix hash. The first
// writer of a key wins; concurrent proposals for the same prefix are
// deduplicated under the shard lock.
func (pc *prefixCache) storeKeyed(key uint64, n int, st *state.State, taint map[evm.StorageKey]evm.Taint, branchesByTx [][]evm.BranchEvent, reports []txReport, nestedDepth int) {
	if pc == nil || n < 1 || !pc.admissible(branchesByTx) {
		return
	}
	// Shallow copy: the outer slice is re-appended by the caller and must be
	// pinned, but the per-transaction event batches are immutable once
	// built (executors construct them fresh per transaction and nothing
	// mutates them afterward), so entries share them.
	cp := append([][]evm.BranchEvent(nil), branchesByTx...)
	entry := &prefixEntry{
		txs:          n,
		st:           st,
		taint:        taint,
		branchesByTx: cp,
		reports:      append([]txReport(nil), reports...),
		nestedDepth:  nestedDepth,
	}

	sh := pc.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.entries[key]; dup {
		return
	}
	if len(sh.order) >= sh.max {
		oldest := sh.order[0]
		sh.order = sh.order[1:]
		delete(sh.entries, oldest)
	}
	sh.entries[key] = entry
	sh.order = append(sh.order, key)
}

// len returns the total number of cached entries (diagnostics and tests).
func (pc *prefixCache) len() int {
	if pc == nil {
		return 0
	}
	n := 0
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// stats reports cache hits and misses.
func (pc *prefixCache) stats() (hits, misses int) {
	if pc == nil {
		return 0, 0
	}
	return int(pc.hits.Load()), int(pc.misses.Load())
}
