package fuzz

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"mufuzz/internal/evm"
	"mufuzz/internal/state"
)

// prefixCache memoizes the world state reached after executing a sequence
// prefix, so a mutated child that shares a prefix with an earlier execution
// can resume from the checkpoint instead of re-running every transaction.
//
// This implements the improvement the paper sketches in §VI ("not to
// re-execute the previous transactions, but to move directly to some
// intermediate state"). Entries capture everything semantically relevant:
// the post-prefix state, the cross-transaction storage taint, and the branch
// events of the prefix (replayed into the campaign's feedback fold so
// coverage/distance bookkeeping is identical to a full execution).
//
// Concurrency: the cache is striped across prefixShards. Each shard keeps an
// authoritative live map, mutated in place under the shard mutex, and
// publishes an immutable copy of it behind an atomic pointer. Readers — the
// hot per-execution lookup and store-policy scans of every worker — never
// take a lock: they load the current published snapshot and read a map
// nothing will ever mutate. Writers serialize on the per-shard mutex and
// republish only every publishEvery stores: under campaign churn the cache
// stores a new checkpoint almost every execution (the FIFO keeps turning
// over), so copying the map per store was the single largest allocation site
// of the whole engine. Batching amortizes the copy to 1/publishEvery stores;
// the entries a stale snapshot is missing become visible a few executions
// later, which cache transparency makes semantically invisible (the
// conformance matrix pins cache-on ≡ cache-off transcripts).
//
// The store path dedups against the live map under the lock (contains,
// storeKeyed), so delayed publication never re-materializes the state fork
// and taint snapshot for a prefix that is already checkpointed.
//
// Entries are immutable once stored: readers copy entry.st outside any lock,
// writers only ever insert or evict whole entries. Eviction is FIFO per
// shard. A reader holding a stale snapshot may resume from an entry that was
// just evicted — harmless, since entries stay valid forever and the
// cache-transparency invariant makes their use semantically invisible.
type prefixCache struct {
	shards [prefixShards]prefixShard
	// epoch counts published snapshot generations across all shards;
	// prefixView compares it to skip refreshing unchanged snapshots.
	epoch  atomic.Uint64
	hits   atomic.Int64
	misses atomic.Int64
}

// prefixShards is the stripe count. Sixteen shards keep any single shard's
// copy-on-write republish small while costing only a few hundred bytes of
// overhead.
const prefixShards = 16

// prefixSnap is one shard's immutable published generation.
type prefixSnap map[uint64]*prefixEntry

// publishEvery is the store-batching factor: a shard republishes its
// snapshot after this many live-map mutations. Higher values amortize the
// copy further but widen the window in which fresh checkpoints are invisible
// to the lock-free read path.
const publishEvery = 8

type prefixShard struct {
	// mu guards live, order, and unpub; readers go through snap.
	mu sync.Mutex
	// live is the authoritative entry map, mutated in place under mu.
	live prefixSnap
	// snap is the published immutable copy the lock-free readers use; it
	// trails live by at most publishEvery-1 stores.
	snap  atomic.Pointer[prefixSnap]
	order []uint64 // FIFO eviction order
	max   int      // per-shard capacity
	unpub int      // live mutations since the last publish
}

type prefixEntry struct {
	// txs is the prefix length the entry checkpoints.
	txs int
	// st is the world state after the prefix (committed). Never mutated
	// after store; resuming executions copy it.
	st *state.State
	// taint is the EVM's cross-transaction storage taint after the prefix.
	taint map[evm.StorageKey]evm.Taint
	// branchesByTx are the contract's branch events of the prefix, one batch
	// per transaction, so the feedback fold (per-transaction weight traces)
	// sees exactly what a re-execution would produce.
	branchesByTx [][]evm.BranchEvent
	// reports are the prefix transactions' oracle reports, replayed into the
	// outcome on a hit. Absorption is idempotent on the coordinator, so the
	// replay is a semantic no-op for a sequential campaign — but it makes
	// every outcome self-contained, which keeps proof-of-concept capture
	// deterministic in batched mode regardless of which worker happened to
	// populate the cache first.
	reports []txReport
	// nestedDepth is the deepest branch-site nesting reached in the prefix.
	nestedDepth int
}

// newPrefixCache builds a cache holding about max entries in total, striped
// evenly across the shards.
func newPrefixCache(max int) *prefixCache {
	perShard := (max + prefixShards - 1) / prefixShards
	if perShard < 1 {
		perShard = 1
	}
	pc := &prefixCache{}
	empty := prefixSnap{}
	for i := range pc.shards {
		pc.shards[i].live = prefixSnap{}
		pc.shards[i].snap.Store(&empty)
		pc.shards[i].max = perShard
	}
	return pc
}

func (pc *prefixCache) shard(key uint64) *prefixShard {
	return &pc.shards[key%prefixShards]
}

// view returns the shard's current immutable generation.
func (sh *prefixShard) view() prefixSnap { return *sh.snap.Load() }

// fnv-1a, hand-rolled: the stdlib hash.Hash64 interface costs an allocation
// and a virtual call per Write, and the hot path hashes every prefix of every
// sequence per execution.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvAdd(h uint64, p []byte) uint64 {
	for _, c := range p {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

func fnvAddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvAddByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// hashTx folds one transaction into a running prefix hash.
func hashTx(h uint64, tx *TxInput) uint64 {
	h = fnvAddString(h, tx.Func)
	h = fnvAddByte(h, 0)
	h = fnvAdd(h, tx.Args)
	v := tx.Value.Bytes32()
	h = fnvAdd(h, v[:])
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(tx.Sender))
	h = fnvAdd(h, buf[:])
	// World extensions fold only when present, so every single-contract
	// sequence keeps the exact hash it had before worlds existed and the
	// checkpoint cache never aliases a cross-contract prefix onto a plain one.
	if tx.Callee != 0 {
		h = fnvAddByte(h, 0xfd)
		binary.LittleEndian.PutUint64(buf[:], uint64(tx.Callee))
		h = fnvAdd(h, buf[:])
	}
	if len(tx.Attacker) > 0 {
		h = fnvAddByte(h, 0xfc)
		h = fnvAdd(h, tx.Attacker)
	}
	return fnvAddByte(h, 0xfe)
}

// hashPrefix fingerprints the first n transactions of a sequence.
func hashPrefix(seq Sequence, n int) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < n && i < len(seq); i++ {
		h = hashTx(h, &seq[i])
	}
	return h
}

// prefixHashes computes the keys of every proper prefix of seq in one pass:
// out[k] is hashPrefix(seq, k+1) for k in [0, len(seq)-2]. The hash is a pure
// running fold over transactions, so all prefixes cost one sequence walk —
// the per-execution lookup and store-policy scans reuse the same table
// instead of rehashing O(n²) bytes. buf is an optional reusable backing.
func prefixHashes(seq Sequence, buf []uint64) []uint64 {
	if len(seq) < 2 {
		return buf[:0]
	}
	out := buf[:0]
	h := uint64(fnvOffset64)
	for i := 0; i < len(seq)-1; i++ {
		h = hashTx(h, &seq[i])
		out = append(out, h)
	}
	return out
}

// lookup returns the entry for the longest cached proper prefix of seq
// (at least 1 transaction, at most len(seq)-1 so the suffix still runs).
// The txs check guards against fnv collisions across prefix lengths: a hit
// only counts when the stored entry checkpoints exactly n transactions.
// Reads the authoritative live state; the hot path uses prefixView instead.
func (pc *prefixCache) lookup(seq Sequence) *prefixEntry {
	if pc == nil {
		return nil
	}
	return pc.lookupHashed(prefixHashes(seq, nil))
}

// lookupHashed is lookup over a precomputed prefix-hash table (hashes[k] is
// the key of the k+1-transaction prefix, as built by prefixHashes).
func (pc *prefixCache) lookupHashed(hashes []uint64) *prefixEntry {
	if pc == nil {
		return nil
	}
	for n := len(hashes); n >= 1; n-- {
		key := hashes[n-1]
		sh := pc.shard(key)
		sh.mu.Lock()
		e, ok := sh.live[key]
		sh.mu.Unlock()
		if ok && e.txs == n {
			pc.hits.Add(1)
			return e
		}
	}
	pc.misses.Add(1)
	return nil
}

// contains reports whether a prefix hash is already checkpointed,
// authoritatively: it consults the live map under the shard lock, so the
// store path never duplicates the fork + taint materialization for an entry
// that is stored but not yet published. Called at most once per execution;
// the per-probe scans go through prefixView.contains.
func (pc *prefixCache) contains(key uint64) bool {
	if pc == nil {
		return false
	}
	sh := pc.shard(key)
	sh.mu.Lock()
	_, ok := sh.live[key]
	sh.mu.Unlock()
	return ok
}

// admissible reports whether a prefix's branch log is small enough to
// cache. Oversized logs are not cached (loop-heavy prefixes would make
// replaying the fold as costly as re-execution); callers should check this
// BEFORE materializing the state fork and taint snapshot a store needs, or
// an inadmissible prefix pays that cost on every execution forever (its key
// never enters the cache, so the contains() pre-check never short-circuits).
func (pc *prefixCache) admissible(branchesByTx [][]evm.BranchEvent) bool {
	total := 0
	for _, b := range branchesByTx {
		total += len(b)
	}
	return total <= 4096
}

// storeKeyed records a checkpoint for a pre-computed prefix hash. The first
// writer of a key wins; concurrent proposals for the same prefix are
// deduplicated against the live map under the shard's lock. The live map is
// mutated in place; a fresh immutable snapshot is published only every
// publishEvery stores, so in-flight readers keep their consistent (slightly
// stale) generation and the per-store copy cost is amortized away.
func (pc *prefixCache) storeKeyed(key uint64, n int, st *state.State, taint map[evm.StorageKey]evm.Taint, branchesByTx [][]evm.BranchEvent, reports []txReport, nestedDepth int) {
	if pc == nil || n < 1 || !pc.admissible(branchesByTx) {
		return
	}
	// Shallow copy: the outer slice is re-appended by the caller and must be
	// pinned, but the per-transaction event batches are immutable once
	// built (executors construct them fresh per transaction and nothing
	// mutates them afterward), so entries share them.
	cp := append([][]evm.BranchEvent(nil), branchesByTx...)
	entry := &prefixEntry{
		txs:          n,
		st:           st,
		taint:        taint,
		branchesByTx: cp,
		reports:      append([]txReport(nil), reports...),
		nestedDepth:  nestedDepth,
	}

	sh := pc.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.live[key]; dup {
		return
	}
	if len(sh.order) >= sh.max {
		oldest := sh.order[0]
		sh.order = sh.order[1:]
		delete(sh.live, oldest)
	}
	sh.live[key] = entry
	sh.order = append(sh.order, key)
	sh.unpub++
	if sh.unpub >= publishEvery {
		sh.publishLocked(pc)
	}
}

// publishLocked copies the live map into a fresh immutable snapshot, swaps
// it in for the lock-free readers, and bumps the cache epoch so per-worker
// views refresh. Caller holds sh.mu.
func (sh *prefixShard) publishLocked(pc *prefixCache) {
	next := make(prefixSnap, len(sh.live))
	for k, v := range sh.live {
		next[k] = v
	}
	sh.snap.Store(&next)
	sh.unpub = 0
	pc.epoch.Add(1)
}

// flush publishes every shard's pending live entries immediately. Tests use
// it to make a just-stored checkpoint visible to the lock-free read path
// without waiting out the publish batch.
func (pc *prefixCache) flush() {
	if pc == nil {
		return
	}
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.Lock()
		if sh.unpub > 0 {
			sh.publishLocked(pc)
		}
		sh.mu.Unlock()
	}
}

// len returns the total number of cached entries (diagnostics and tests).
func (pc *prefixCache) len() int {
	if pc == nil {
		return 0
	}
	n := 0
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.Lock()
		n += len(sh.live)
		sh.mu.Unlock()
	}
	return n
}

// stats reports cache hits and misses.
func (pc *prefixCache) stats() (hits, misses int) {
	if pc == nil {
		return 0, 0
	}
	return int(pc.hits.Load()), int(pc.misses.Load())
}

// prefixView is one executor's cached read affinity over the cache: the 16
// shard snapshots, revalidated against the global epoch once per execution
// instead of once per probe. A sequence walk probes the cache O(len²) times
// across lookup and store-policy scans; through the view those probes are
// plain map reads on worker-local pointers — no atomics, no shared cache
// lines — while a stale view is at most one execution behind (and staleness
// is semantically invisible by cache transparency: a missed fresh entry only
// costs a longer re-execution, a just-evicted entry is still valid).
type prefixView struct {
	pc    *prefixCache
	epoch uint64
	snaps [prefixShards]prefixSnap
}

// refresh revalidates the view against pc, reloading the shard snapshots
// only when some store has bumped the epoch since the last refresh. The
// epoch is read before the snapshots: a concurrent store between the two
// loads yields fresher snapshots stamped with the older epoch, forcing a
// redundant (never unsafe) refresh next time.
func (v *prefixView) refresh(pc *prefixCache) {
	if pc == nil {
		v.pc = nil
		return
	}
	e := pc.epoch.Load()
	if v.pc == pc && v.epoch == e {
		return
	}
	for i := range v.snaps {
		v.snaps[i] = pc.shards[i].view()
	}
	v.pc = pc
	v.epoch = e
}

// lookupHashed mirrors prefixCache.lookupHashed over the view's snapshots.
func (v *prefixView) lookupHashed(hashes []uint64) *prefixEntry {
	if v.pc == nil {
		return nil
	}
	for n := len(hashes); n >= 1; n-- {
		key := hashes[n-1]
		if e, ok := v.snaps[key%prefixShards][key]; ok && e.txs == n {
			v.pc.hits.Add(1)
			return e
		}
	}
	v.pc.misses.Add(1)
	return nil
}

// contains mirrors prefixCache.contains over the view's snapshots.
func (v *prefixView) contains(key uint64) bool {
	if v.pc == nil {
		return false
	}
	_, ok := v.snaps[key%prefixShards][key]
	return ok
}
