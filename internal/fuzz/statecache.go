package fuzz

import (
	"encoding/binary"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"mufuzz/internal/evm"
	"mufuzz/internal/state"
)

// prefixCache memoizes the world state reached after executing a sequence
// prefix, so a mutated child that shares a prefix with an earlier execution
// can resume from the checkpoint instead of re-running every transaction.
//
// This implements the improvement the paper sketches in §VI ("not to
// re-execute the previous transactions, but to move directly to some
// intermediate state"). Entries capture everything semantically relevant:
// the post-prefix state, the cross-transaction storage taint, and the branch
// events of the prefix (replayed into the campaign's feedback fold so
// coverage/distance bookkeeping is identical to a full execution).
//
// The cache is striped across prefixShards independently locked shards so
// the executor goroutines of a parallel campaign can look up checkpoints and
// propose inserts concurrently. Entries are immutable once stored: readers
// copy entry.st outside the shard lock, writers only ever insert or evict
// whole entries. Eviction is FIFO per shard.
type prefixCache struct {
	shards [prefixShards]prefixShard
	hits   atomic.Int64
	misses atomic.Int64
}

// prefixShards is the stripe count. Sixteen shards keep lock contention
// negligible for any realistic Options.Workers while costing only a few
// hundred bytes of overhead.
const prefixShards = 16

type prefixShard struct {
	mu      sync.RWMutex
	entries map[uint64]*prefixEntry
	order   []uint64 // FIFO eviction order
	max     int      // per-shard capacity
}

type prefixEntry struct {
	// txs is the prefix length the entry checkpoints.
	txs int
	// st is the world state after the prefix (committed). Never mutated
	// after store; resuming executions copy it.
	st *state.State
	// taint is the EVM's cross-transaction storage taint after the prefix.
	taint map[evm.StorageKey]evm.Taint
	// branchesByTx are the contract's branch events of the prefix, one batch
	// per transaction, so the feedback fold (per-transaction weight traces)
	// sees exactly what a re-execution would produce.
	branchesByTx [][]evm.BranchEvent
	// reports are the prefix transactions' oracle reports, replayed into the
	// outcome on a hit. Absorption is idempotent on the coordinator, so the
	// replay is a semantic no-op for a sequential campaign — but it makes
	// every outcome self-contained, which keeps proof-of-concept capture
	// deterministic in batched mode regardless of which worker happened to
	// populate the cache first.
	reports []txReport
	// nestedDepth is the deepest branch-site nesting reached in the prefix.
	nestedDepth int
}

// newPrefixCache builds a cache holding about max entries in total, striped
// evenly across the shards.
func newPrefixCache(max int) *prefixCache {
	perShard := (max + prefixShards - 1) / prefixShards
	if perShard < 1 {
		perShard = 1
	}
	pc := &prefixCache{}
	for i := range pc.shards {
		pc.shards[i].entries = make(map[uint64]*prefixEntry)
		pc.shards[i].max = perShard
	}
	return pc
}

func (pc *prefixCache) shard(key uint64) *prefixShard {
	return &pc.shards[key%prefixShards]
}

// hashPrefix fingerprints the first n transactions of a sequence.
func hashPrefix(seq Sequence, n int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < n && i < len(seq); i++ {
		tx := seq[i]
		h.Write([]byte(tx.Func))
		h.Write([]byte{0})
		h.Write(tx.Args)
		v := tx.Value.Bytes32()
		h.Write(v[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(tx.Sender))
		h.Write(buf[:])
		h.Write([]byte{0xfe})
	}
	return h.Sum64()
}

// lookup returns the entry for the longest cached proper prefix of seq
// (at least 1 transaction, at most len(seq)-1 so the suffix still runs).
// The txs check guards against fnv collisions across prefix lengths: a hit
// only counts when the stored entry checkpoints exactly n transactions.
func (pc *prefixCache) lookup(seq Sequence) *prefixEntry {
	if pc == nil {
		return nil
	}
	for n := len(seq) - 1; n >= 1; n-- {
		key := hashPrefix(seq, n)
		sh := pc.shard(key)
		sh.mu.RLock()
		e, ok := sh.entries[key]
		sh.mu.RUnlock()
		if ok && e.txs == n {
			pc.hits.Add(1)
			return e
		}
	}
	pc.misses.Add(1)
	return nil
}

// contains reports whether a prefix hash is already checkpointed.
func (pc *prefixCache) contains(key uint64) bool {
	if pc == nil {
		return false
	}
	sh := pc.shard(key)
	sh.mu.RLock()
	_, ok := sh.entries[key]
	sh.mu.RUnlock()
	return ok
}

// admissible reports whether a prefix's branch log is small enough to
// cache. Oversized logs are not cached (loop-heavy prefixes would make
// replaying the fold as costly as re-execution); callers should check this
// BEFORE materializing the state fork and taint snapshot a store needs, or
// an inadmissible prefix pays that cost on every execution forever (its key
// never enters the cache, so the contains() pre-check never short-circuits).
func (pc *prefixCache) admissible(branchesByTx [][]evm.BranchEvent) bool {
	total := 0
	for _, b := range branchesByTx {
		total += len(b)
	}
	return total <= 4096
}

// storeKeyed records a checkpoint for a pre-computed prefix hash. The first
// writer of a key wins; concurrent proposals for the same prefix are
// deduplicated under the shard lock.
func (pc *prefixCache) storeKeyed(key uint64, n int, st *state.State, taint map[evm.StorageKey]evm.Taint, branchesByTx [][]evm.BranchEvent, reports []txReport, nestedDepth int) {
	if pc == nil || n < 1 || !pc.admissible(branchesByTx) {
		return
	}
	// Shallow copy: the outer slice is re-appended by the caller and must be
	// pinned, but the per-transaction event batches are immutable once
	// built (executors construct them fresh per transaction and nothing
	// mutates them afterward), so entries share them.
	cp := append([][]evm.BranchEvent(nil), branchesByTx...)
	entry := &prefixEntry{
		txs:          n,
		st:           st,
		taint:        taint,
		branchesByTx: cp,
		reports:      append([]txReport(nil), reports...),
		nestedDepth:  nestedDepth,
	}

	sh := pc.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.entries[key]; dup {
		return
	}
	if len(sh.order) >= sh.max {
		oldest := sh.order[0]
		sh.order = sh.order[1:]
		delete(sh.entries, oldest)
	}
	sh.entries[key] = entry
	sh.order = append(sh.order, key)
}

// len returns the total number of cached entries (diagnostics and tests).
func (pc *prefixCache) len() int {
	if pc == nil {
		return 0
	}
	n := 0
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// stats reports cache hits and misses.
func (pc *prefixCache) stats() (hits, misses int) {
	if pc == nil {
		return 0, 0
	}
	return int(pc.hits.Load()), int(pc.misses.Load())
}
