package fuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// dumpState canonically renders a world state (fuzz-side twin of the state
// package's test helper, via the public API only).
func dumpState(s *state.State) string {
	var b strings.Builder
	for _, addr := range s.Accounts() {
		fmt.Fprintf(&b, "%s bal=%s code=%x destroyed=%v storage{",
			addr, s.Balance(addr), s.Code(addr), s.Destroyed(addr))
		st := s.StorageDump(addr)
		keys := make([]u256.Int, 0, len(st))
		for k := range st {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Lt(keys[j]) })
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, st[k])
		}
		b.WriteString(" }\n")
	}
	return b.String()
}

// collectEntries drains every checkpoint entry of a campaign's prefix cache,
// publishing pending stores first so nothing batched is missed.
func collectEntries(pc *prefixCache) []*prefixEntry {
	pc.flush()
	var out []*prefixEntry
	for i := range pc.shards {
		for _, e := range pc.shards[i].view() {
			out = append(out, e)
		}
	}
	return out
}

// TestConcurrentForksOffCheckpointEntries is the engine-level CoW stress:
// run a real campaign to populate the prefix cache with live checkpoint
// states, then fork every entry from many goroutines at once and mutate the
// forks hard. The entries — shared, supposedly immutable — must come out
// byte-identical, and the campaign must still be able to resume from them.
// Run under -race this pins the generation-tag protocol of state.Fork.
func TestConcurrentForksOffCheckpointEntries(t *testing.T) {
	comp := mustCompile(t, corpus.Crowdsale())
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 5, Iterations: 400})
	c.Run()

	entries := collectEntries(c.prefixes)
	if len(entries) == 0 {
		t.Fatal("campaign populated no checkpoint entries")
	}
	before := make([]string, len(entries))
	for i, e := range entries {
		before[i] = dumpState(e.st)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for round := 0; round < 30; round++ {
				e := entries[(round+w)%len(entries)]
				ch := e.st.Fork()
				// mutate the fork across every write path
				addr := state.AddressFromUint(uint64(rng.Intn(8)))
				ch.SetBalance(addr, u256.New(rng.Uint64()))
				ch.SetStorage(c.contractAddr, u256.New(uint64(rng.Intn(8))), u256.New(rng.Uint64()))
				snap := ch.Snapshot()
				ch.Destroy(c.contractAddr, addr)
				ch.RevertTo(snap)
			}
		}(w)
	}
	wg.Wait()

	for i, e := range entries {
		if got := dumpState(e.st); got != before[i] {
			t.Fatalf("checkpoint entry %d corrupted by concurrent forks\nbefore:\n%s\nafter:\n%s", i, before[i], got)
		}
	}
}

// TestResumeFromForkedCheckpointMatchesFreshRun pins the executor contract
// under CoW: executing a sequence that resumes from a (heavily re-forked)
// checkpoint must produce the same branch events as a from-genesis run.
func TestResumeFromForkedCheckpointMatchesFreshRun(t *testing.T) {
	comp := mustCompile(t, corpus.Crowdsale())
	cached := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 3, Iterations: 10})
	fresh := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 3, Iterations: 10, NoPrefixCache: true})

	seq := cached.initialSequence()
	// First run populates checkpoints (collectEntries publishes the batched
	// stores, so the second run's lock-free lookup sees them); stress-fork
	// them; second run resumes.
	out1 := cached.exec.run(seq)
	for _, e := range collectEntries(cached.prefixes) {
		for i := 0; i < 4; i++ {
			ch := e.st.Fork()
			ch.SetStorage(cached.contractAddr, u256.New(uint64(i)), u256.New(999))
		}
	}
	out2 := cached.exec.run(seq)
	if out2.firstLive == 0 {
		t.Fatal("second run did not resume from a checkpoint")
	}
	ref := fresh.exec.run(seq)

	for _, out := range []*execOutcome{&out1, &out2} {
		if len(out.branchesByTx) != len(ref.branchesByTx) {
			t.Fatalf("tx batch count %d != %d", len(out.branchesByTx), len(ref.branchesByTx))
		}
		for i := range ref.branchesByTx {
			if len(out.branchesByTx[i]) != len(ref.branchesByTx[i]) {
				t.Fatalf("tx %d: %d branch events != %d", i, len(out.branchesByTx[i]), len(ref.branchesByTx[i]))
			}
			for j := range ref.branchesByTx[i] {
				if out.branchesByTx[i][j].Key() != ref.branchesByTx[i][j].Key() {
					t.Fatalf("tx %d event %d: %+v != %+v", i, j, out.branchesByTx[i][j].Key(), ref.branchesByTx[i][j].Key())
				}
			}
		}
	}
}
