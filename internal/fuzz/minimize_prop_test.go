package fuzz

import (
	"os"
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/minisol"
)

// TestMinimizedPoCStillTriggersBug is the property pin on minimize.go: for
// every labelled corpus contract the campaign cracks within a small budget,
// the minimized proof of concept must (a) still trigger the same bug class
// on an independent replay, (b) be no longer than the recorded PoC, and (c)
// keep the constructor as its first transaction. This exercises ddmin's
// chunk and single-transaction passes against every bug class the oracles
// implement, not just the handful of curated cases in minimize_test.go.
func TestMinimizedPoCStillTriggersBug(t *testing.T) {
	if os.Getenv("MUFUZZ_CONFORMANCE") == "" {
		t.Skip("whole-suite campaigns: set MUFUZZ_CONFORMANCE=1 (runs in the CI conformance job)")
	}
	cracked := 0
	for _, l := range corpus.VulnSuite() {
		comp, err := minisol.Compile(l.Source)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 7, Iterations: 600})
		res := c.Run()
		for class, poc := range res.Repro {
			cracked++
			min := c.MinimizeForBug(poc, class)
			if len(min) > len(poc) {
				t.Errorf("%s/%s: minimized PoC grew: %d > %d", l.Name, class, len(min), len(poc))
			}
			if len(min) == 0 || min[0].Func != minisol.CtorName {
				t.Errorf("%s/%s: minimized PoC lost the constructor: %s", l.Name, class, min)
				continue
			}
			if !c.Replay(min).BugClasses[class] {
				t.Errorf("%s/%s: minimized PoC no longer triggers the bug\nfull: %s\nmin:  %s",
					l.Name, class, poc, min)
			}
		}
	}
	if cracked < 20 {
		t.Fatalf("property exercised on only %d cracked PoCs; expected at least 20 across the suite", cracked)
	}
}
