package fuzz

// goldenFingerprints pins the observable behavior of the Workers=1 engine.
// Regenerated when comparison-operand feedback and mined dictionaries became
// part of the MuFuzz default — the flag-off behavior is separately pinned by
// goldenLegacyFingerprints above. Everything remains a pure function of
// (Seed, Workers). Regenerate with MUFUZZ_GOLDEN_REGEN=1 only after an
// intentional behavior change.
// goldenLegacyFingerprints are the fingerprints the engine produced before
// comparison-operand feedback and mined dictionaries existed (PR 4 through
// PR 7). The "MuFuzz w/o comparison feedback" ablation must still reproduce
// them byte for byte (modulo the strategy name) — see
// TestGoldenCmpFeedbackOffLegacy. Do not regenerate: these are a fixed
// historical reference.
var goldenLegacyFingerprints = map[string]string{
	"crowdsale-seed1": `strategy=MuFuzz covered=20/24 cov=0.833333 execs=300 queue=9 masks=3 seqmut=80
findings=[]
classes=[]
repro=[]
t 1 0.541667
t 3 0.583333
t 6 0.625000
t 14 0.666667
t 137 0.833333
`,
	"crowdsale-seed7": `strategy=MuFuzz covered=21/24 cov=0.875000 execs=300 queue=13 masks=3 seqmut=78
findings=[]
classes=[]
repro=[]
t 1 0.541667
t 7 0.583333
t 9 0.625000
t 17 0.666667
t 48 0.708333
t 56 0.750000
t 207 0.833333
t 221 0.875000
`,
	"crowdsale-buggy-seed1": `strategy=MuFuzz covered=22/26 cov=0.846154 execs=300 queue=9 masks=4 seqmut=79
findings=[BD@283:block state (timestamp/number) influences a branch or call; BD@288:block state (timestamp/number) influences a branch or call]
classes=[BD]
repro=[BD:__ctor>invest>invest>refund>withdraw]
t 1 0.500000
t 3 0.538462
t 6 0.576923
t 18 0.615385
t 23 0.807692
t 25 0.846154
`,
}

var goldenFingerprints = map[string]string{
	"crowdsale-seed1": `strategy=MuFuzz covered=20/24 cov=0.833333 execs=300 queue=9 masks=3 seqmut=86
findings=[]
classes=[]
repro=[]
t 1 0.541667
t 3 0.583333
t 6 0.625000
t 13 0.666667
t 68 0.833333
`,
	"crowdsale-seed7": `strategy=MuFuzz covered=20/24 cov=0.833333 execs=300 queue=9 masks=3 seqmut=77
findings=[IO@130:ADD wraps mod 2^256 and the result persists; IO@152:ADD wraps mod 2^256 and the result persists]
classes=[IO]
repro=[IO:__ctor>invest>invest]
t 1 0.541667
t 6 0.583333
t 15 0.625000
t 26 0.666667
t 66 0.833333
`,
	"crowdsale-buggy-seed1": `strategy=MuFuzz covered=21/26 cov=0.807692 execs=300 queue=9 masks=3 seqmut=85
findings=[BD@283:block state (timestamp/number) influences a branch or call; BD@288:block state (timestamp/number) influences a branch or call]
classes=[BD]
repro=[BD:__ctor>invest>invest>refund>withdraw]
t 1 0.500000
t 3 0.538462
t 6 0.576923
t 13 0.615385
t 68 0.807692
`,
}
