package fuzz

// goldenFingerprints pins the observable behavior of the Workers=1 engine,
// captured from the pre-CoW deep-copy engine (PR 1). The copy-on-write state
// layer and indexed coverage fold are pure representation changes, so every
// campaign decision — coverage growth, findings, PoCs, counters — must stay
// byte-identical. Regenerate with MUFUZZ_GOLDEN_REGEN=1 only after an
// intentional behavior change.
var goldenFingerprints = map[string]string{
	"crowdsale-seed1": `strategy=MuFuzz covered=20/24 cov=0.833333 execs=300 queue=9 masks=3 seqmut=83
findings=[]
classes=[]
repro=[]
t 1 0.541667
t 3 0.583333
t 6 0.625000
t 9 0.666667
t 139 0.833333
`,
	"crowdsale-seed7": `strategy=MuFuzz covered=20/24 cov=0.833333 execs=300 queue=11 masks=3 seqmut=87
findings=[]
classes=[]
repro=[]
t 1 0.541667
t 7 0.583333
t 9 0.625000
t 17 0.666667
t 48 0.708333
t 193 0.833333
`,
	"crowdsale-buggy-seed1": `strategy=MuFuzz covered=22/26 cov=0.846154 execs=300 queue=9 masks=4 seqmut=75
findings=[BD@283:block state (timestamp/number) influences a branch or call; BD@288:block state (timestamp/number) influences a branch or call]
classes=[BD]
repro=[BD:__ctor>invest>invest>refund>withdraw]
t 1 0.500000
t 3 0.538462
t 6 0.576923
t 9 0.615385
t 23 0.807692
t 26 0.846154
`,
}
