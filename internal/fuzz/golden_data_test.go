package fuzz

// goldenFingerprints pins the observable behavior of the Workers=1 engine.
// Captured from the snapshot-capable engine (PR 4), whose one intentional
// behavior change over the PR 1–3 engines is that mutation insert bytes come
// from the buffer-free fillBytes draw instead of rand.Rand.Read — the change
// that makes the coordinator rng state equal to its source draw count, which
// campaign snapshot/resume depends on. Everything else — coverage growth,
// findings, PoCs, counters — remains a pure function of (Seed, Workers).
// Regenerate with MUFUZZ_GOLDEN_REGEN=1 only after an intentional behavior
// change.
var goldenFingerprints = map[string]string{
	"crowdsale-seed1": `strategy=MuFuzz covered=20/24 cov=0.833333 execs=300 queue=9 masks=3 seqmut=80
findings=[]
classes=[]
repro=[]
t 1 0.541667
t 3 0.583333
t 6 0.625000
t 14 0.666667
t 137 0.833333
`,
	"crowdsale-seed7": `strategy=MuFuzz covered=21/24 cov=0.875000 execs=300 queue=13 masks=3 seqmut=78
findings=[]
classes=[]
repro=[]
t 1 0.541667
t 7 0.583333
t 9 0.625000
t 17 0.666667
t 48 0.708333
t 56 0.750000
t 207 0.833333
t 221 0.875000
`,
	"crowdsale-buggy-seed1": `strategy=MuFuzz covered=22/26 cov=0.846154 execs=300 queue=9 masks=4 seqmut=79
findings=[BD@283:block state (timestamp/number) influences a branch or call; BD@288:block state (timestamp/number) influences a branch or call]
classes=[BD]
repro=[BD:__ctor>invest>invest>refund>withdraw]
t 1 0.500000
t 3 0.538462
t 6 0.576923
t 18 0.615385
t 23 0.807692
t 25 0.846154
`,
}
