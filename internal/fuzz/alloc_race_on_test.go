//go:build race

package fuzz

// raceEnabled reports whether the race detector is compiled in; the
// allocation-gate test skips under -race because instrumentation changes
// allocation counts.
const raceEnabled = true
