package fuzz

import "testing"

// TestExecuteAllocGate pins the steady-state allocation budget of the hot
// path: after a warmed-up campaign (IR programs compiled, frame/state pools
// populated, prefix cache filled), executing a queue sequence must stay
// within a fixed allocation budget. This is the regression gate behind the
// "zero-alloc hot path" work — per-execution garbage crept back in whenever
// a refactor silently re-introduced a copy, and benchmarks alone don't fail
// CI. The budget is deliberately above the measured steady state (see
// BENCH_campaign.json) to absorb Go-version variance, but far below the
// ~80 allocs/exec of the pre-IR engine.
func TestExecuteAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 400})
	c.Run() // warm everything the executor pools or caches

	seqs := c.QueueSequences()
	if len(seqs) == 0 {
		t.Fatal("campaign produced no queue sequences")
	}
	// Pick the longest queue sequence: more transactions per execution means
	// more chances for a per-transaction allocation to show up in the average.
	seq := seqs[0]
	for _, s := range seqs {
		if len(s) > len(seq) {
			seq = s
		}
	}

	const budget = 16.0 // measured ~3; pre-IR engine was ~80
	avg := testing.AllocsPerRun(200, func() {
		c.execute(seq)
	})
	if avg > budget {
		t.Errorf("steady-state execute allocates %.1f objects/run, budget %.0f", avg, budget)
	}
	t.Logf("steady-state execute: %.1f allocs/run over %d txs", avg, len(seq))
}
