package fuzz

import (
	"sort"

	"mufuzz/internal/minisol"
	"mufuzz/internal/u256"
)

// maxDictionary bounds a mined dictionary so pathological targets cannot
// dilute the value pool into uselessness.
const maxDictionary = 128

// mineASTDictionary walks a MiniSol contract and collects interesting word
// constants for the campaign value pool: every integer literal, plus the
// results of constant-foldable arithmetic — with constant propagation through
// locals, so a magic value the source assembles from parts
// ("uint256 hi = 0x4d41; ... hi * 65536 + lo") is mined whole even though no
// single literal (and, since the compiler does not fold constants, no single
// PUSH immediate) spells it. The result is deduplicated and sorted.
func mineASTDictionary(c *minisol.Contract) []u256.Int {
	m := &astMiner{vals: map[u256.Int]bool{}}
	for i := range c.StateVars {
		if init := c.StateVars[i].Init; init != nil {
			m.walkExpr(init, map[string]u256.Int{})
		}
	}
	if c.Ctor != nil {
		m.walkStmts(c.Ctor.Body, map[string]u256.Int{})
	}
	for i := range c.Functions {
		m.walkStmts(c.Functions[i].Body, map[string]u256.Int{})
	}
	out := make([]u256.Int, 0, len(m.vals))
	for v := range m.vals {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lt(out[j]) })
	if len(out) > maxDictionary {
		out = out[:maxDictionary]
	}
	return out
}

type astMiner struct {
	vals map[u256.Int]bool
}

// add records a mined constant, applying the same filter as the campaign's
// PUSH-immediate harvest: zero and near-full-width values carry no signal.
func (m *astMiner) add(v u256.Int) {
	if v.IsZero() || v.BitLen() >= 200 {
		return
	}
	m.vals[v] = true
}

// walkStmts scans statements, tracking which locals are bound to known
// constants. env maps local names to their constant values; a local loses its
// binding on any assignment that is not itself constant.
func (m *astMiner) walkStmts(stmts []minisol.Stmt, env map[string]u256.Int) {
	for _, s := range stmts {
		switch t := s.(type) {
		case *minisol.VarDeclStmt:
			if t.Init != nil {
				m.walkExpr(t.Init, env)
				if v, ok := evalConstExpr(t.Init, env); ok {
					env[t.Name] = v
					continue
				}
			}
			delete(env, t.Name)
		case *minisol.AssignStmt:
			m.walkExpr(t.Target, env)
			m.walkExpr(t.Value, env)
			if id, isIdent := t.Target.(*minisol.Ident); isIdent &&
				id.Binding != nil && id.Binding.Kind == minisol.BindLocal {
				if v, ok := evalConstExpr(t.Value, env); ok && t.Op == "=" {
					env[id.Name] = v
				} else {
					delete(env, id.Name)
				}
			}
		case *minisol.IfStmt:
			m.walkExpr(t.Cond, env)
			m.walkStmts(t.Then, copyConstEnv(env))
			m.walkStmts(t.Else, copyConstEnv(env))
			invalidateAssigned(t.Then, env)
			invalidateAssigned(t.Else, env)
		case *minisol.WhileStmt:
			m.walkExpr(t.Cond, env)
			m.walkStmts(t.Body, copyConstEnv(env))
			invalidateAssigned(t.Body, env)
		case *minisol.RequireStmt:
			m.walkExpr(t.Cond, env)
		case *minisol.ReturnStmt:
			if t.Value != nil {
				m.walkExpr(t.Value, env)
			}
		case *minisol.TransferStmt:
			m.walkExpr(t.Target, env)
			m.walkExpr(t.Amount, env)
		case *minisol.SelfDestructStmt:
			m.walkExpr(t.Beneficiary, env)
		case *minisol.ExprStmt:
			m.walkExpr(t.X, env)
		}
	}
}

// walkExpr collects literals everywhere and folded values at every constant
// arithmetic node (intermediate results included — a near-miss constant is
// still a better guess than a random byte).
func (m *astMiner) walkExpr(e minisol.Expr, env map[string]u256.Int) {
	switch t := e.(type) {
	case *minisol.NumberLit:
		m.add(t.Value)
	case *minisol.BinaryExpr:
		m.walkExpr(t.L, env)
		m.walkExpr(t.R, env)
		if v, ok := evalConstExpr(e, env); ok {
			m.add(v)
		}
	case *minisol.UnaryExpr:
		m.walkExpr(t.X, env)
	case *minisol.IndexExpr:
		m.walkExpr(t.Key, env)
	case *minisol.CastExpr:
		m.walkExpr(t.X, env)
	case *minisol.BalanceExpr:
		m.walkExpr(t.Addr, env)
	case *minisol.KeccakExpr:
		for _, a := range t.Args {
			m.walkExpr(a, env)
		}
	case *minisol.CallValueExpr:
		m.walkExpr(t.Target, env)
		m.walkExpr(t.Amount, env)
	case *minisol.SendExpr:
		m.walkExpr(t.Target, env)
		m.walkExpr(t.Amount, env)
	case *minisol.DelegateCallExpr:
		m.walkExpr(t.Target, env)
		for _, a := range t.Args {
			m.walkExpr(a, env)
		}
	}
}

// evalConstExpr evaluates a word-valued expression to a constant under the
// local bindings in env, with EVM wrapping semantics (matching what the
// generated code computes at runtime). ok=false for anything non-constant.
func evalConstExpr(e minisol.Expr, env map[string]u256.Int) (u256.Int, bool) {
	switch t := e.(type) {
	case *minisol.NumberLit:
		return t.Value, true
	case *minisol.Ident:
		if t.Binding != nil && t.Binding.Kind == minisol.BindLocal {
			v, ok := env[t.Name]
			return v, ok
		}
	case *minisol.CastExpr:
		if t.To.Kind == minisol.TyUint || t.To.Kind == minisol.TyBytes32 || t.To.Kind == minisol.TyInt {
			return evalConstExpr(t.X, env)
		}
	case *minisol.UnaryExpr:
		if t.Op == "-" {
			if v, ok := evalConstExpr(t.X, env); ok {
				return v.Neg(), true
			}
		}
	case *minisol.BinaryExpr:
		l, lok := evalConstExpr(t.L, env)
		r, rok := evalConstExpr(t.R, env)
		if !lok || !rok {
			return u256.Int{}, false
		}
		switch t.Op {
		case "+":
			return l.Add(r), true
		case "-":
			return l.Sub(r), true
		case "*":
			return l.Mul(r), true
		case "/":
			return l.Div(r), true
		case "%":
			return l.Mod(r), true
		case "&":
			return l.And(r), true
		case "|":
			return l.Or(r), true
		case "^":
			return l.Xor(r), true
		}
	}
	return u256.Int{}, false
}

func copyConstEnv(env map[string]u256.Int) map[string]u256.Int {
	out := make(map[string]u256.Int, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// invalidateAssigned drops from env every local assigned or redeclared
// anywhere inside stmts — after a conditional region its value is unknown.
func invalidateAssigned(stmts []minisol.Stmt, env map[string]u256.Int) {
	for _, s := range stmts {
		switch t := s.(type) {
		case *minisol.VarDeclStmt:
			delete(env, t.Name)
		case *minisol.AssignStmt:
			if id, ok := t.Target.(*minisol.Ident); ok {
				delete(env, id.Name)
			}
		case *minisol.IfStmt:
			invalidateAssigned(t.Then, env)
			invalidateAssigned(t.Else, env)
		case *minisol.WhileStmt:
			invalidateAssigned(t.Body, env)
		}
	}
}
