package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler returns the service's HTTP JSON API:
//
//	POST /v1/campaigns               submit a campaign (CampaignSpec JSON)
//	GET  /v1/campaigns               list campaign statuses
//	GET  /v1/campaigns/{id}          one campaign's status
//	GET  /v1/campaigns/{id}/findings findings with PoCs (?minimize=1 shrinks)
//	GET  /v1/campaigns/{id}/events   server-sent events status stream
//	POST /v1/campaigns/{id}/cancel   stop a campaign
//	POST /v1/drain                   snapshot everything, stop scheduling
//	GET  /healthz                    liveness
//	GET  /readyz                     readiness (store open + scheduler accepting)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "campaigns": len(s.Statuses())})
	})

	// Readiness: the store is open, the scheduler slots are running, and the
	// service accepts submissions (not drained). 503 with a reason otherwise,
	// so orchestrators and CI jobs can gate on it instead of sleeping.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, reason := s.Ready()
		if !ready {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})

	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec CampaignSpec
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
			return
		}
		st, err := s.Submit(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})

	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Statuses())
	})

	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no campaign %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/campaigns/{id}/findings", func(w http.ResponseWriter, r *http.Request) {
		minimize := r.URL.Query().Get("minimize") == "1"
		findings, err := s.Findings(r.PathValue("id"), minimize)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, findings)
	})

	mux.HandleFunc("POST /v1/campaigns/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		st, _ := s.Status(r.PathValue("id"))
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/campaigns/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no campaign %s", r.PathValue("id")))
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		ch, unsub := j.subscribe()
		defer unsub()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-s.ctx.Done():
				return
			case st := <-ch:
				data, _ := json.Marshal(st)
				fmt.Fprintf(w, "data: %s\n\n", data)
				fl.Flush()
				// Terminal states end the stream so pollers terminate.
				switch st.State {
				case StateDone, StateCancelled, StateFailed, StateDrained:
					return
				}
			}
		}
	})

	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		n := s.Drain()
		writeJSON(w, http.StatusOK, map[string]any{"drained": n})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
