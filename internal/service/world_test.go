package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fixtureSpecParts reads one fixture's bytecode hex + ABI JSON.
func fixtureSpecParts(t *testing.T, name string) (string, []byte) {
	t.Helper()
	bin, err := os.ReadFile(filepath.Join("../../fixtures", name+".bin"))
	if err != nil {
		t.Fatalf("fixture missing (regen with `go run ./cmd/corpusgen -fixtures fixtures`): %v", err)
	}
	abiJSON, err := os.ReadFile(filepath.Join("../../fixtures", name+".abi.json"))
	if err != nil {
		t.Fatal(err)
	}
	return string(bin), abiJSON
}

// TestServiceWorldCampaign submits a multi-contract world — the reentrant
// bank as primary, the token as a member, attacker synthesis on — and runs
// the full service lifecycle: the world bucket appears in the status, the
// witnessed RE finding lands, and a drain/restart resumes the world
// campaign (members and attacker re-resolved from the spec) with the
// finding intact.
func TestServiceWorldCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("service campaigns are slow")
	}
	bankBin, bankABI := fixtureSpecParts(t, "bank-reentrant")
	tokBin, tokABI := fixtureSpecParts(t, "erc20")
	spec := CampaignSpec{
		Bytecode: bankBin, ABI: bankABI,
		Members:    []WorldMemberSpec{{Name: "token", Bytecode: tokBin, ABI: tokABI}},
		Attacker:   true,
		Iterations: 2_000_000,
		Seed:       1,
	}

	dir := t.TempDir()
	svc, _ := startService(t, openStoreT(t, dir), Config{Slots: 1, SliceRounds: 8})
	st, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.Contract, "world-") {
		t.Fatalf("world campaign not bucketed by world ID: contract=%q", st.Contract)
	}

	waitFor(t, 60*time.Second, "world campaign cracks RE", func() bool {
		cur, _ := svc.Status(st.ID)
		return hasClass(cur, "RE")
	})
	svc.Drain()

	svc2, _ := startService(t, openStoreT(t, dir), Config{Slots: 1, SliceRounds: 8})
	defer svc2.Drain()
	cur, ok := svc2.Status(st.ID)
	if !ok {
		t.Fatalf("world campaign %s lost across restart", st.ID)
	}
	if !hasClass(cur, "RE") {
		t.Fatalf("world finding lost across restart: %+v", cur)
	}
	if cur.Contract != st.Contract {
		t.Fatalf("world bucket changed across restart: %q vs %q", cur.Contract, st.Contract)
	}
	findings, err := svc2.Findings(st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if f.Class == "RE" && len(f.PoC) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no replayable RE PoC served after restart: %+v", findings)
	}
}

// TestServiceRejectsBadWorldSpecs pins world-spec validation.
func TestServiceRejectsBadWorldSpecs(t *testing.T) {
	bankBin, bankABI := fixtureSpecParts(t, "bank-reentrant")
	svc, _ := startService(t, nil, Config{})
	defer svc.Drain()
	base := CampaignSpec{Bytecode: bankBin, ABI: bankABI, Iterations: 100}

	bad := base
	bad.Members = []WorldMemberSpec{{Name: "", Bytecode: bankBin, ABI: bankABI}}
	if _, err := svc.Submit(bad); err == nil {
		t.Fatal("unnamed member accepted")
	}
	bad = base
	bad.Members = []WorldMemberSpec{
		{Name: "dup", Bytecode: bankBin, ABI: bankABI},
		{Name: "dup", Bytecode: bankBin, ABI: bankABI},
	}
	if _, err := svc.Submit(bad); err == nil {
		t.Fatal("duplicate member names accepted")
	}
	bad = base
	bad.Members = []WorldMemberSpec{{Name: "token"}}
	if _, err := svc.Submit(bad); err == nil {
		t.Fatal("member without artifacts accepted")
	}
}
