package service

import (
	"encoding/hex"
	"net/http"
	"strings"
	"testing"
	"time"

	"mufuzz/internal/corpus"
	"mufuzz/internal/minisol"
)

// buggyBytecodeSpec compiles the buggy crowdsale and returns it as the
// on-chain artifact pair a source-free submission carries.
func buggyBytecodeSpec(t *testing.T) CampaignSpec {
	t.Helper()
	comp, err := minisol.Compile(corpus.CrowdsaleBuggy())
	if err != nil {
		t.Fatal(err)
	}
	return CampaignSpec{
		Bytecode:   "0x" + hex.EncodeToString(comp.Code),
		ABI:        comp.ABI.EncodeJSON(),
		Iterations: 2_000_000,
		Seed:       1,
	}
}

// TestServiceBytecodeTarget submits deployed bytecode + ABI JSON over the
// HTTP API, waits for the seeded BD finding, then drains, restarts on the
// same store, and checks the source-free campaign resumed with its finding
// — the full lifecycle with no source anywhere.
func TestServiceBytecodeTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("service campaigns are slow")
	}
	dir := t.TempDir()
	svc, ts := startService(t, openStoreT(t, dir), Config{Slots: 1, SliceRounds: 8})

	spec := buggyBytecodeSpec(t)
	var st Status
	if code := postJSON(t, ts.URL+"/v1/campaigns", spec, &st); code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", code)
	}
	if !strings.HasPrefix(st.Contract, "code-") {
		t.Fatalf("bytecode target not bucketed by codehash: contract=%q", st.Contract)
	}

	waitFor(t, 60*time.Second, "source-free campaign detects BD", func() bool {
		cur, _ := svc.Status(st.ID)
		return hasClass(cur, "BD")
	})

	svc.Drain()
	ts.Close()

	svc2, _ := startService(t, openStoreT(t, dir), Config{Slots: 1, SliceRounds: 8})
	defer svc2.Drain()
	cur, ok := svc2.Status(st.ID)
	if !ok {
		t.Fatalf("campaign %s lost across restart", st.ID)
	}
	if !hasClass(cur, "BD") {
		t.Fatalf("finding lost across restart: %+v", cur)
	}
	findings, err := svc2.Findings(st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("no findings served after restart")
	}
	// The PoC call order must start at the sequence anchor and use ABI names
	// — the replayable artifact a source-free consumer gets.
	if len(findings[0].PoC) == 0 || findings[0].PoC[0] != minisol.CtorName {
		t.Fatalf("PoC malformed: %v", findings[0].PoC)
	}
}

// TestServiceRejectsBadBytecodeSpecs pins the validation errors.
func TestServiceRejectsBadBytecodeSpecs(t *testing.T) {
	svc, _ := startService(t, nil, Config{})
	defer svc.Drain()
	if _, err := svc.Submit(CampaignSpec{Bytecode: "0x6001"}); err == nil {
		t.Fatal("bytecode without abi accepted")
	}
	if _, err := svc.Submit(CampaignSpec{Bytecode: "zz", ABI: []byte("[]")}); err == nil {
		t.Fatal("junk hex accepted")
	}
	if _, err := svc.Submit(CampaignSpec{Example: "crowdsale", Bytecode: "0x6001", ABI: []byte("[]")}); err == nil {
		t.Fatal("ambiguous spec accepted")
	}
}
