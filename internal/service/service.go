// Package service is the campaign service: a multi-tenant scheduler that
// time-slices any number of concurrent fuzzing campaigns over a bounded pool
// of executor slots, shares corpus seeds between campaigns through the
// persistent store, and snapshots every in-flight campaign on drain so a
// restarted service resumes exactly where it stopped — no findings, corpus,
// or schedule position lost.
//
// The scheduling unit is one engine slice (Campaign.RunSlice): a bounded
// number of energy rounds at a deterministic boundary of the campaign
// schedule. Between slices the service exports new queue seeds to the store
// (deduplicated by coverage fingerprint) and imports seeds sibling campaigns
// discovered, so campaigns on the same contract cross-pollinate interesting
// sequences the way OSS-Fuzz-style fleets share corpora.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mufuzz/internal/corpus"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/ingest"
	"mufuzz/internal/minisol"
	"mufuzz/internal/store"
	"mufuzz/internal/world"
)

// Config tunes one service instance.
type Config struct {
	// Store persists snapshots, metadata, PoCs, and the shared seed corpus.
	// nil runs the service fully in memory: no persistence, no seed sharing
	// (used by benchmarks and overhead measurements).
	Store *store.Store
	// SliceRounds is the number of energy rounds one scheduling slice runs
	// before the campaign yields its slot. Default 8.
	SliceRounds int
	// Slots is the number of campaign slices allowed to run concurrently —
	// the bounded executor pool. Default 1.
	Slots int
	// Workers is the default Options.Workers of submitted campaigns (each
	// campaign may override it in its spec). Default 1.
	Workers int
	// DefaultIterations is the campaign budget when a spec omits one.
	// Default 20000.
	DefaultIterations int
	// ImportPerSlice caps how many foreign seeds one slice imports, bounding
	// the injection cost a popular contract imposes on its campaigns.
	// Default 64.
	ImportPerSlice int
}

// persistEverySlices is the snapshot cadence of a healthy mid-flight
// campaign (snapshots also happen on new findings, terminal states, and
// drain).
const persistEverySlices = 8

func (c Config) withDefaults() Config {
	if c.SliceRounds == 0 {
		c.SliceRounds = 8
	}
	if c.Slots == 0 {
		c.Slots = 1
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.DefaultIterations == 0 {
		c.DefaultIterations = 20000
	}
	if c.ImportPerSlice == 0 {
		c.ImportPerSlice = 64
	}
	return c
}

// CampaignSpec is the submission payload: what to fuzz and how hard.
type CampaignSpec struct {
	// Name is a human label; defaults to the contract name.
	Name string `json:"name,omitempty"`
	// Source is MiniSol source text. Exactly one of Source/Example/Bytecode
	// is set.
	Source string `json:"source,omitempty"`
	// Example names a built-in corpus example (crowdsale, crowdsale-buggy,
	// game).
	Example string `json:"example,omitempty"`
	// Bytecode is hex-encoded deployed EVM bytecode (runtime or creation;
	// 0x prefix optional) for a source-free target. Requires ABI. Seeds for
	// bytecode targets are bucketed by codehash, so campaigns fuzzing the
	// same deployed code cross-pollinate regardless of who submitted them.
	Bytecode string `json:"bytecode,omitempty"`
	// ABI is the contract's standard Solidity ABI JSON (the array form),
	// required alongside Bytecode.
	ABI json.RawMessage `json:"abi,omitempty"`
	// Members declares secondary contracts deployed into the campaign's
	// world alongside the primary target; their functions enter sequences
	// qualified by member name. Campaigns with members are bucketed by the
	// world's sorted-codehash ID, so any campaign on the same contract set
	// cross-pollinates seeds.
	Members []WorldMemberSpec `json:"members,omitempty"`
	// Attacker synthesizes a fuzzer-controlled attacker contract into the
	// world, arming the witnessed reentrancy/delegatecall oracles.
	Attacker bool `json:"attacker,omitempty"`
	// Strategy is a preset name (mufuzz, sfuzz, confuzzius, irfuzz,
	// smartian); default mufuzz.
	Strategy string `json:"strategy,omitempty"`
	// Seed is the campaign rng seed; default 1.
	Seed int64 `json:"seed,omitempty"`
	// Iterations is the execution budget; default Config.DefaultIterations.
	Iterations int `json:"iterations,omitempty"`
	// Workers overrides the service default executor fan-out per slice.
	Workers int `json:"workers,omitempty"`
}

// WorldMemberSpec is one world member in a campaign spec: a source-free
// bytecode + ABI pair deployed next to the primary target.
type WorldMemberSpec struct {
	// Name qualifies the member's functions in sequences; unique, non-empty,
	// no whitespace.
	Name string `json:"name"`
	// Bytecode is the member's hex EVM bytecode (same format as
	// CampaignSpec.Bytecode).
	Bytecode string `json:"bytecode"`
	// ABI is the member's Solidity ABI JSON.
	ABI json.RawMessage `json:"abi"`
}

// Campaign states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateCancelled = "cancelled"
	StateDrained   = "drained"
	StateFailed    = "failed"
)

// Status is the externally visible campaign state, served as JSON.
type Status struct {
	ID            string   `json:"id"`
	Name          string   `json:"name"`
	Contract      string   `json:"contract"`
	State         string   `json:"state"`
	Error         string   `json:"error,omitempty"`
	Executions    int      `json:"executions"`
	Iterations    int      `json:"iterations"`
	Coverage      float64  `json:"coverage"`
	CoveredEdges  int      `json:"covered_edges"`
	TotalEdges    int      `json:"total_edges"`
	SeedQueueLen  int      `json:"seed_queue_len"`
	Findings      int      `json:"findings"`
	Classes       []string `json:"classes,omitempty"`
	SeedsImported int      `json:"seeds_imported"`
	SeedsExported int      `json:"seeds_exported"`
	Slices        int      `json:"slices"`
}

// Finding is one reported vulnerability with its proof-of-concept call
// orders, served as JSON.
type Finding struct {
	Class       string   `json:"class"`
	PC          uint64   `json:"pc"`
	Description string   `json:"description"`
	PoC         []string `json:"poc,omitempty"`
	PoCMin      []string `json:"poc_minimized,omitempty"`
}

// job is one managed campaign.
type job struct {
	id       string
	spec     CampaignSpec
	target   fuzz.Target
	contract string // seed-sharing bucket (contract name or codehash label)

	// execMu serializes campaign engine access: the scheduler slice, the
	// findings/minimize handlers, and drain snapshotting.
	execMu   sync.Mutex
	campaign *fuzz.Campaign
	result   *fuzz.Result
	// exported/imported track seed fingerprints this campaign already
	// shared or absorbed; seqSeen short-circuits re-replaying queue
	// sequences already fingerprinted in an earlier slice.
	exported map[string]bool
	imported map[string]bool
	seqSeen  map[string]bool
	// slicesSincePersist and persistedClasses drive the mid-campaign
	// persistence cadence (owned by the single worker running the job's
	// slices).
	slicesSincePersist int
	persistedClasses   int

	cancelled atomic.Bool
	// sliceCancel, when non-nil, aborts the slice currently running.
	sliceCancelMu sync.Mutex
	sliceCancel   context.CancelFunc

	mu     sync.Mutex
	status Status
	subs   map[chan Status]struct{}
}

// jobMeta is the store's per-campaign metadata record.
type jobMeta struct {
	ID     string       `json:"id"`
	Spec   CampaignSpec `json:"spec"`
	Status Status       `json:"status"`
}

// Service is one campaign-service instance.
type Service struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string
	nextID  int
	drained bool
	started bool

	runq chan *job
}

// New builds a service; call Start to launch the scheduler.
func New(cfg Config) *Service {
	ctx, cancel := context.WithCancel(context.Background())
	return &Service{
		cfg:    cfg.withDefaults(),
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
		runq:   make(chan *job, 4096),
	}
}

// Start restores persisted campaigns from the store (drained and running
// ones re-enter the schedule; completed ones become queryable again) and
// launches the scheduler slots.
func (s *Service) Start() error {
	if err := s.restore(); err != nil {
		return err
	}
	for i := 0; i < s.cfg.Slots; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.mu.Lock()
	s.started = true
	s.mu.Unlock()
	return nil
}

// Ready reports whether the service can accept and schedule campaigns: the
// store (if any) was opened and restored, the scheduler slots are running,
// and the service has not drained. The /readyz endpoint — what fleet
// heartbeats and CI smoke jobs poll instead of sleep-and-retry loops —
// serves this; the empty reason means ready.
func (s *Service) Ready() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case !s.started:
		return false, "scheduler not started"
	case s.drained:
		return false, "service drained"
	}
	return true, ""
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.runq:
			s.runSlice(j)
		}
	}
}

// ResolveTarget maps a spec to a fuzzable target: compiled MiniSol source
// (inline or a built-in example) or source-free bytecode + ABI. Exported for
// the fleet subsystem, whose workers must resolve leased specs exactly the
// way the service does — one resolution path, no drift.
func ResolveTarget(spec CampaignSpec) (fuzz.Target, error) {
	set := 0
	for _, s := range []bool{spec.Source != "", spec.Example != "", spec.Bytecode != ""} {
		if s {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("spec needs exactly one of source, example, or bytecode")
	}

	if spec.Bytecode != "" {
		if len(spec.ABI) == 0 {
			return nil, fmt.Errorf("bytecode campaigns need an abi")
		}
		return ingest.LoadHex(spec.Bytecode, spec.ABI)
	}

	src := spec.Source
	if spec.Example != "" {
		switch spec.Example {
		case "crowdsale":
			src = corpus.Crowdsale()
		case "crowdsale-buggy":
			src = corpus.CrowdsaleBuggy()
		case "game":
			src = corpus.Game()
		default:
			return nil, fmt.Errorf("unknown example %q", spec.Example)
		}
	}
	comp, err := minisol.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	return fuzz.MinisolTarget(comp), nil
}

// ResolveWorld maps a spec's world half (members + attacker) to engine
// WorldOptions and the campaign's seed-sharing bucket. Plain specs get nil
// options and the primary target's name; specs with members get the
// order-independent world bucket so campaigns on the same contract set
// share a corpus no matter how their specs list the members. Exported for
// the fleet subsystem (see ResolveTarget).
func ResolveWorld(spec CampaignSpec, primary fuzz.Target) (*fuzz.WorldOptions, string, error) {
	if len(spec.Members) == 0 && !spec.Attacker {
		return nil, primary.Name(), nil
	}
	w := &fuzz.WorldOptions{}
	seen := map[string]bool{}
	for _, m := range spec.Members {
		if m.Name == "" || seen[m.Name] {
			return nil, "", fmt.Errorf("world member needs a unique non-empty name (got %q)", m.Name)
		}
		seen[m.Name] = true
		if m.Bytecode == "" || len(m.ABI) == 0 {
			return nil, "", fmt.Errorf("world member %s needs bytecode and abi", m.Name)
		}
		t, err := ingest.LoadHex(m.Bytecode, m.ABI)
		if err != nil {
			return nil, "", fmt.Errorf("world member %s: %w", m.Name, err)
		}
		w.Members = append(w.Members, fuzz.WorldMember{Name: m.Name, Target: t})
	}
	if spec.Attacker {
		w.Attacker = world.NewModel(primary.Methods())
	}
	bucket := primary.Name()
	if len(w.Members) > 0 {
		all := []fuzz.Target{primary}
		for _, m := range w.Members {
			all = append(all, m.Target)
		}
		bucket = world.BucketID(all...)
	}
	return w, bucket, nil
}

// SpecOptions maps a spec to engine options, filling omitted fields from the
// given instance defaults. Exported for the fleet subsystem: coordinator and
// workers derive campaign options from the spec through this one function, so
// a leased slice runs under exactly the options the coordinator scheduled.
func SpecOptions(spec CampaignSpec, defaultIterations, defaultWorkers int) (fuzz.Options, error) {
	strat, ok := fuzz.PresetByName(spec.Strategy)
	if !ok {
		return fuzz.Options{}, fmt.Errorf("unknown strategy %q", spec.Strategy)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	iters := spec.Iterations
	if iters == 0 {
		iters = defaultIterations
	}
	workers := spec.Workers
	if workers == 0 {
		workers = defaultWorkers
	}
	return fuzz.Options{Strategy: strat, Seed: seed, Iterations: iters, Workers: workers}, nil
}

// options maps a spec to engine options under this service's defaults.
func (s *Service) options(spec CampaignSpec) (fuzz.Options, error) {
	return SpecOptions(spec, s.cfg.DefaultIterations, s.cfg.Workers)
}

// Submit resolves and enqueues a new campaign.
func (s *Service) Submit(spec CampaignSpec) (Status, error) {
	opts, err := s.options(spec)
	if err != nil {
		return Status{}, err
	}
	target, err := ResolveTarget(spec)
	if err != nil {
		return Status{}, err
	}
	worldOpts, bucket, err := ResolveWorld(spec, target)
	if err != nil {
		return Status{}, err
	}
	opts.World = worldOpts

	s.mu.Lock()
	if s.drained {
		s.mu.Unlock()
		return Status{}, fmt.Errorf("service is drained")
	}
	s.nextID++
	id := fmt.Sprintf("c%04d", s.nextID)
	name := spec.Name
	if name == "" {
		name = target.Name()
	}
	j := &job{
		id:       id,
		spec:     spec,
		target:   target,
		contract: bucket,
		campaign: fuzz.NewTargetCampaign(target, opts),
		exported: make(map[string]bool),
		imported: make(map[string]bool),
		seqSeen:  make(map[string]bool),
		subs:     make(map[chan Status]struct{}),
	}
	j.status = Status{
		ID: id, Name: name, Contract: bucket,
		State: StateQueued, Iterations: opts.Iterations,
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.persist(j)
	s.enqueue(j)
	return j.Status(), nil
}

func (s *Service) enqueue(j *job) {
	select {
	case s.runq <- j:
	default:
		// The queue is bounded far above any plausible job count; if it is
		// somehow full, fail the job loudly rather than block a slot.
		j.fail(fmt.Errorf("scheduler queue overflow"))
	}
}

// runSlice runs one scheduling slice of one campaign: import shared seeds,
// run SliceRounds energy rounds, export new seeds and PoCs, publish status,
// and requeue (or finalize).
func (s *Service) runSlice(j *job) {
	if j.cancelled.Load() {
		j.setState(StateCancelled, nil)
		s.persist(j)
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	j.setSliceCancel(cancel)
	defer func() {
		j.setSliceCancel(nil)
		cancel() // release the child context; one leaks per slice otherwise
	}()

	j.execMu.Lock()
	j.setState(StateRunning, nil)
	imported := s.importSeeds(j)
	res, done := j.campaign.RunSlice(ctx, s.cfg.SliceRounds)
	j.result = res
	exported := s.exportSeeds(j)
	s.persistPoCs(j, res)
	j.execMu.Unlock()

	j.publish(func(st *Status) {
		st.Executions = res.Executions
		st.Coverage = res.Coverage
		st.CoveredEdges = res.CoveredEdges
		st.TotalEdges = res.TotalEdges
		st.SeedQueueLen = res.SeedQueueLen
		st.Findings = len(res.Findings)
		st.Classes = classList(res)
		st.SeedsImported += imported
		st.SeedsExported += exported
		st.Slices++
	})

	switch {
	case j.cancelled.Load():
		j.setState(StateCancelled, nil)
		s.persist(j)
	case done:
		j.setState(StateDone, nil)
		s.persist(j)
	case s.ctx.Err() != nil:
		// Service is draining; Drain persists the snapshot once all slots
		// have stopped.
	default:
		// Mid-campaign persistence is a durability/throughput trade: a full
		// snapshot costs a deep state copy plus fsynced writes, so it runs
		// when a new bug class appeared (findings must survive a crash) or
		// every persistEverySlices slices, not after every slice. A crash
		// loses at most that many slices of schedule progress — the seed
		// corpus and PoCs are persisted on their own cadence above.
		j.slicesSincePersist++
		if len(res.BugClasses) > j.persistedClasses || j.slicesSincePersist >= persistEverySlices {
			s.persist(j)
			j.slicesSincePersist = 0
			j.persistedClasses = len(res.BugClasses)
		}
		s.enqueue(j)
	}
}

func classList(res *fuzz.Result) []string {
	out := make([]string, 0, len(res.BugClasses))
	for c := range res.BugClasses {
		out = append(out, string(c))
	}
	sort.Strings(out)
	return out
}

// importSeeds injects store seeds this campaign has not seen. Own exports
// are skipped, so a lone campaign never re-executes its own corpus.
func (s *Service) importSeeds(j *job) int {
	if s.cfg.Store == nil {
		return 0
	}
	entries, err := s.cfg.Store.Seeds(j.contract)
	if err != nil {
		return 0
	}
	var batch []fuzz.Sequence
	for _, e := range entries {
		if len(batch) >= s.cfg.ImportPerSlice {
			break
		}
		if j.imported[e.Name] || j.exported[e.Name] {
			continue
		}
		j.imported[e.Name] = true
		seq, err := fuzz.DecodeSequence(e.Payload)
		if err != nil {
			continue
		}
		batch = append(batch, seq)
	}
	if len(batch) == 0 {
		return 0
	}
	return j.campaign.InjectSequences(batch)
}

// exportSeeds fingerprints the campaign's new queue sequences by the
// coverage a detached replay observes and stores the novel ones.
func (s *Service) exportSeeds(j *job) int {
	if s.cfg.Store == nil {
		return 0
	}
	n := 0
	for _, seq := range j.campaign.QueueSequences() {
		enc := fuzz.EncodeSequence(seq)
		key := string(enc)
		if j.seqSeen[key] {
			continue
		}
		j.seqSeen[key] = true
		fp := store.Fingerprint(j.campaign.ReplayCoverageEdges(seq))
		if j.exported[fp] || j.imported[fp] {
			continue
		}
		j.exported[fp] = true
		if wrote, err := s.cfg.Store.PutSeed(j.contract, fp, enc); err == nil && wrote {
			n++
		}
	}
	return n
}

// persistPoCs writes each bug class's first triggering sequence — the
// crash-safe record a findings consumer can replay even if the service dies
// before drain.
func (s *Service) persistPoCs(j *job, res *fuzz.Result) {
	if s.cfg.Store == nil {
		return
	}
	for class, seq := range res.Repro {
		name := j.id + "-" + string(class)
		_, _ = s.cfg.Store.PutIfAbsent(store.KindPoC, j.contract, name, fuzz.EncodeSequence(seq))
	}
}

// persist writes the job's snapshot and metadata. Callers must not hold
// j.execMu.
func (s *Service) persist(j *job) {
	if s.cfg.Store == nil {
		return
	}
	j.execMu.Lock()
	var snap []byte
	if j.campaign != nil {
		snap = j.campaign.Snapshot().EncodeBytes()
	}
	j.execMu.Unlock()
	if snap != nil {
		_ = s.cfg.Store.Put(store.KindSnapshot, "", j.id+".snap", snap)
	}
	meta, _ := json.Marshal(jobMeta{ID: j.id, Spec: j.spec, Status: j.Status()})
	_ = s.cfg.Store.Put(store.KindMeta, "", j.id+".json", meta)
}

// restore loads persisted campaigns on startup. Unfinished campaigns
// (drained, running, queued) resume scheduling; finished ones are restored
// for queries only.
func (s *Service) restore() error {
	if s.cfg.Store == nil {
		return nil
	}
	metas, err := s.cfg.Store.List(store.KindMeta, "")
	if err != nil {
		return err
	}
	var requeue []*job
	s.mu.Lock()
	for _, e := range metas {
		var m jobMeta
		if err := json.Unmarshal(e.Payload, &m); err != nil || m.ID == "" {
			continue
		}
		j := &job{
			id:       m.ID,
			spec:     m.Spec,
			exported: make(map[string]bool),
			imported: make(map[string]bool),
			seqSeen:  make(map[string]bool),
			subs:     make(map[chan Status]struct{}),
			status:   m.Status,
		}
		var n int
		if _, err := fmt.Sscanf(m.ID, "c%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
		if err := s.rebuild(j); err != nil {
			j.status.State = StateFailed
			j.status.Error = err.Error()
		} else {
			switch j.status.State {
			case StateQueued, StateRunning, StateDrained:
				j.status.State = StateQueued
				requeue = append(requeue, j)
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		j.contract = j.status.Contract
	}
	sort.Strings(s.order)
	s.mu.Unlock()
	for _, j := range requeue {
		s.enqueue(j)
	}
	return nil
}

// rebuild re-resolves a restored job's target and resumes its campaign from
// the stored snapshot.
func (s *Service) rebuild(j *job) error {
	target, err := ResolveTarget(j.spec)
	if err != nil {
		return err
	}
	j.target = target
	worldOpts, _, err := ResolveWorld(j.spec, target)
	if err != nil {
		return err
	}
	data, err := s.cfg.Store.Get(store.KindSnapshot, "", j.id+".snap")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	snap, err := fuzz.DecodeSnapshot(bytes.NewReader(data))
	if err != nil {
		return err
	}
	var c *fuzz.Campaign
	if worldOpts != nil {
		c, err = fuzz.ResumeWorldCampaign(target, worldOpts, snap)
	} else {
		c, err = fuzz.ResumeTargetCampaign(target, snap)
	}
	if err != nil {
		return err
	}
	j.campaign = c
	return nil
}

// Drain stops the scheduler, snapshots every live campaign to the store,
// and marks them drained. Idempotent; the service accepts no new campaigns
// afterwards. Returns how many campaigns were snapshotted.
func (s *Service) Drain() int {
	s.mu.Lock()
	if s.drained {
		s.mu.Unlock()
		return 0
	}
	s.drained = true
	s.mu.Unlock()

	s.cancel()
	s.wg.Wait()

	n := 0
	for _, j := range s.jobList() {
		st := j.Status()
		if st.State == StateQueued || st.State == StateRunning {
			j.setState(StateDrained, nil)
			n++
		}
		if j.campaign != nil {
			s.persist(j)
		}
	}
	return n
}

// Close is Drain for defer use.
func (s *Service) Close() { s.Drain() }

// Cancel stops a campaign: its current slice is aborted and it leaves the
// schedule.
func (s *Service) Cancel(id string) error {
	j, ok := s.job(id)
	if !ok {
		return fmt.Errorf("no campaign %s", id)
	}
	j.cancelled.Store(true)
	j.sliceCancelMu.Lock()
	if j.sliceCancel != nil {
		j.sliceCancel()
	}
	j.sliceCancelMu.Unlock()
	// A queued (not running) job flips state immediately; a running one is
	// finalized by its worker.
	if st := j.Status(); st.State == StateQueued {
		j.setState(StateCancelled, nil)
		s.persist(j)
	}
	return nil
}

// Statuses lists every campaign in submission order.
func (s *Service) Statuses() []Status {
	jobs := s.jobList()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Status returns one campaign's status.
func (s *Service) Status(id string) (Status, bool) {
	j, ok := s.job(id)
	if !ok {
		return Status{}, false
	}
	return j.Status(), true
}

// Findings returns a campaign's findings with proof-of-concept call orders;
// minimize additionally ddmin-shrinks each PoC (replays run on a detached
// engine and do not perturb the campaign).
func (s *Service) Findings(id string, minimize bool) ([]Finding, error) {
	j, ok := s.job(id)
	if !ok {
		return nil, fmt.Errorf("no campaign %s", id)
	}
	j.execMu.Lock()
	defer j.execMu.Unlock()
	if j.campaign == nil {
		return nil, fmt.Errorf("campaign %s has no engine state (%s)", id, j.Status().State)
	}
	res := j.result
	if res == nil {
		res = j.campaign.ResultSoFar()
	}
	out := make([]Finding, 0, len(res.Findings))
	for _, f := range res.Findings {
		fo := Finding{Class: string(f.Class), PC: f.PC, Description: f.Description}
		if seq, ok := res.Repro[f.Class]; ok {
			fo.PoC = callOrder(seq)
			if minimize {
				fo.PoCMin = callOrder(j.campaign.MinimizeForBug(seq, f.Class))
			}
		}
		out = append(out, fo)
	}
	return out, nil
}

func callOrder(seq fuzz.Sequence) []string {
	out := make([]string, len(seq))
	for i, tx := range seq {
		out[i] = tx.Func
	}
	return out
}

func (s *Service) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Service) jobList() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// --- job helpers ---

// Status returns a copy of the job's current status.
func (j *job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func (j *job) setState(state string, err error) {
	j.publish(func(st *Status) {
		st.State = state
		if err != nil {
			st.Error = err.Error()
		}
	})
}

func (j *job) fail(err error) { j.setState(StateFailed, err) }

// publish mutates the status under the job lock and broadcasts the new
// value to subscribers (non-blocking: a slow subscriber misses updates, not
// the stream's liveness).
func (j *job) publish(mut func(*Status)) {
	j.mu.Lock()
	mut(&j.status)
	st := j.status
	for ch := range j.subs {
		select {
		case ch <- st:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe registers a status listener; the returned cancel unregisters.
func (j *job) subscribe() (<-chan Status, func()) {
	ch := make(chan Status, 8)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	ch <- j.status
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

func (j *job) setSliceCancel(f context.CancelFunc) {
	j.sliceCancelMu.Lock()
	j.sliceCancel = f
	j.sliceCancelMu.Unlock()
}
