package service

import (
	"bytes"
	"encoding/json"
	"fmt"

	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mufuzz/internal/corpus"
	"mufuzz/internal/store"
)

func openStoreT(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func startService(t *testing.T, st *store.Store, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	cfg.Store = st
	svc := New(cfg)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func hasClass(st Status, class string) bool {
	for _, c := range st.Classes {
		if c == class {
			return true
		}
	}
	return false
}

// TestServiceEndToEnd is the acceptance scenario: two concurrent campaigns
// submitted over the HTTP API fuzz the same contract, share seeds through
// the store, both detect the deep block-dependency bug within their fixed
// budget, and a drain/restart cycle loses no findings.
func TestServiceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, ts := startService(t, openStoreT(t, dir), Config{Slots: 2, SliceRounds: 4, DefaultIterations: 6000})

	// Submit two campaigns on the same contract with different seeds.
	var ids []string
	for _, seed := range []int64{1, 42} {
		var st Status
		code := postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{
			Example: "crowdsale-buggy", Seed: seed, Iterations: 6000,
		}, &st)
		if code != http.StatusCreated {
			t.Fatalf("submit returned %d", code)
		}
		if st.ID == "" || st.Contract != "CrowdsaleBuggy" {
			t.Fatalf("bad submit status: %+v", st)
		}
		ids = append(ids, st.ID)
	}

	// Both campaigns must crack the nested withdraw branch (the BD finding
	// lives behind phase==1, which needs invested>=goal first) within their
	// budget.
	status := func(id string) Status {
		var st Status
		if code := getJSON(t, ts.URL+"/v1/campaigns/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s returned %d", id, code)
		}
		return st
	}
	waitFor(t, 60*time.Second, "both campaigns detect BD", func() bool {
		return hasClass(status(ids[0]), "BD") && hasClass(status(ids[1]), "BD")
	})

	// Seed sharing must actually have happened through the store.
	waitFor(t, 60*time.Second, "cross-campaign seed sharing", func() bool {
		a, b := status(ids[0]), status(ids[1])
		return a.SeedsExported+b.SeedsExported > 0 && a.SeedsImported+b.SeedsImported > 0
	})
	entries, err := openStoreT(t, dir).Seeds("CrowdsaleBuggy")
	if err != nil || len(entries) == 0 {
		t.Fatalf("store has no shared seeds (err=%v)", err)
	}

	// Findings endpoint serves the PoC with a minimized variant.
	var findings []Finding
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+ids[0]+"/findings?minimize=1", &findings); code != http.StatusOK {
		t.Fatalf("findings returned %d", code)
	}
	if len(findings) == 0 {
		t.Fatal("no findings served")
	}
	sawBD := false
	for _, f := range findings {
		if f.Class == "BD" {
			sawBD = true
			if len(f.PoC) == 0 || len(f.PoCMin) == 0 || len(f.PoCMin) > len(f.PoC) {
				t.Fatalf("bad PoC shape: %+v", f)
			}
		}
	}
	if !sawBD {
		t.Fatalf("BD missing from findings: %+v", findings)
	}

	// Drain over HTTP: everything snapshots to the store.
	var drainResp map[string]any
	if code := postJSON(t, ts.URL+"/v1/drain", nil, &drainResp); code != http.StatusOK {
		t.Fatalf("drain returned %d", code)
	}

	// Restart against the same store: both campaigns are back with their
	// findings intact, and unfinished ones keep running to completion.
	svc2, ts2 := startService(t, openStoreT(t, dir), Config{Slots: 2, SliceRounds: 4})
	defer svc2.Drain()
	for _, id := range ids {
		var st Status
		if code := getJSON(t, ts2.URL+"/v1/campaigns/"+id, &st); code != http.StatusOK {
			t.Fatalf("restarted status %s returned %d", id, code)
		}
		if !hasClass(st, "BD") {
			t.Fatalf("campaign %s lost its BD finding across drain/restart: %+v", id, st)
		}
		var fs []Finding
		if code := getJSON(t, ts2.URL+"/v1/campaigns/"+id+"/findings", &fs); code != http.StatusOK || len(fs) == 0 {
			t.Fatalf("restarted findings %s: code=%d n=%d", id, code, len(fs))
		}
	}
	waitFor(t, 120*time.Second, "restarted campaigns finish their budget", func() bool {
		done := 0
		for _, id := range ids {
			var st Status
			getJSON(t, ts2.URL+"/v1/campaigns/"+id, &st)
			if st.State == StateDone {
				done++
			}
		}
		return done == len(ids)
	})
}

// TestServiceSSEAndCancel covers the status stream and campaign
// cancellation.
func TestServiceSSEAndCancel(t *testing.T) {
	_, ts := startService(t, openStoreT(t, t.TempDir()), Config{Slots: 1, SliceRounds: 2})

	var st Status
	postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{Example: "crowdsale", Iterations: 100000}, &st)

	// The SSE stream delivers at least one status event.
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "data: ") {
		t.Fatalf("no SSE event in %q", buf[:n])
	}

	if code := postJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/cancel", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel returned %d", code)
	}
	waitFor(t, 30*time.Second, "campaign cancelled", func() bool {
		var cur Status
		getJSON(t, ts.URL+"/v1/campaigns/"+st.ID, &cur)
		return cur.State == StateCancelled
	})
	// A cancelled campaign stopped early: it must not reach its budget.
	var cur Status
	getJSON(t, ts.URL+"/v1/campaigns/"+st.ID, &cur)
	if cur.Executions >= cur.Iterations {
		t.Fatalf("cancelled campaign ran its whole budget: %+v", cur)
	}

	if code := getJSON(t, ts.URL+"/v1/campaigns/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown campaign returned %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{Source: "contract Broken {"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad source returned %d", code)
	}
}

// TestServiceRejectsAfterDrain pins drain semantics on the Go API.
func TestServiceRejectsAfterDrain(t *testing.T) {
	svc, _ := startService(t, openStoreT(t, t.TempDir()), Config{})
	if _, err := svc.Submit(CampaignSpec{Example: "crowdsale"}); err != nil {
		t.Fatal(err)
	}
	svc.Drain()
	if _, err := svc.Submit(CampaignSpec{Example: "crowdsale"}); err == nil {
		t.Fatal("submit after drain must fail")
	}
	if n := svc.Drain(); n != 0 {
		t.Fatalf("second drain drained %d", n)
	}
}

// TestDrainImmediatelyAfterSubmitLosesNothing is the drain-race regression:
// a campaign drained before (or while) its very first slice runs must come
// back on restart and finish — never be misclassified as done with zero
// executions.
func TestDrainImmediatelyAfterSubmitLosesNothing(t *testing.T) {
	dir := t.TempDir()
	for round := 0; round < 5; round++ {
		svc, _ := startService(t, openStoreT(t, dir), Config{Slots: 1, SliceRounds: 1})
		id := fmt.Sprintf("c%04d", round+1)
		st, err := svc.Submit(CampaignSpec{Example: "crowdsale", Iterations: 300})
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 && st.ID != id {
			t.Fatalf("unexpected id %s", st.ID)
		}
		svc.Drain() // races the first slice on purpose
		got, _ := svc.Status(st.ID)
		if got.State == StateDone && got.Executions < 300 {
			t.Fatalf("round %d: campaign marked done with %d/300 executions", round, got.Executions)
		}
		// Restart: every campaign submitted so far must eventually finish
		// its full budget.
		svc2, _ := startService(t, openStoreT(t, dir), Config{Slots: 1, SliceRounds: 1})
		waitFor(t, 60*time.Second, "all campaigns complete after restart", func() bool {
			for _, s := range svc2.Statuses() {
				if s.State != StateDone || s.Executions < 300 {
					return false
				}
			}
			return len(svc2.Statuses()) == round+1
		})
		svc2.Drain()
	}
}

// TestSchedulerFairness checks the bounded pool multiplexes many campaigns:
// with one slot, several concurrent campaigns all make progress.
func TestSchedulerFairness(t *testing.T) {
	svc, ts := startService(t, openStoreT(t, t.TempDir()), Config{Slots: 1, SliceRounds: 2})
	defer svc.Drain()
	var ids []string
	for i := 0; i < 4; i++ {
		var st Status
		postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{
			Source: corpus.Crowdsale(), Seed: int64(i + 1), Iterations: 2000,
		}, &st)
		ids = append(ids, st.ID)
	}
	waitFor(t, 120*time.Second, "all campaigns finish on one slot", func() bool {
		var list []Status
		getJSON(t, ts.URL+"/v1/campaigns", &list)
		done := 0
		for _, st := range list {
			if st.State == StateDone {
				done++
			}
		}
		return done == len(ids)
	})
	var list []Status
	getJSON(t, ts.URL+"/v1/campaigns", &list)
	for _, st := range list {
		if st.Executions < 2000 {
			t.Fatalf("campaign %s starved: %+v", st.ID, st)
		}
	}
}
