package world

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/keccak"
	"mufuzz/internal/state"
)

// BucketID derives the corpus-store bucket of a multi-contract world: the
// keccak of the member runtime codehashes in sorted order, so the bucket is
// independent of member declaration order and collides exactly when two
// worlds fuzz the same set of contracts.
func BucketID(targets ...fuzz.Target) string {
	hashes := make([]string, len(targets))
	for i, t := range targets {
		h := keccak.Sum256(t.Code())
		hashes[i] = hex.EncodeToString(h[:])
	}
	sort.Strings(hashes)
	sum := keccak.Sum256([]byte(strings.Join(hashes, ",")))
	return "world-" + hex.EncodeToString(sum[:6])
}

// ManifestMember is one secondary contract declared in a world manifest.
type ManifestMember struct {
	// Name qualifies the member's functions in sequences.
	Name string
	// Bin and ABI are artifact paths as written in the manifest (relative
	// paths are the caller's to resolve against the manifest directory).
	Bin string
	ABI string
	// Addr optionally pins the deployment address (zero = assigned).
	Addr state.Address
}

// ParseManifest reads a world manifest: one `member <name> <bin> <abi>
// [addr]` line per secondary contract, with blank lines and #-comments
// ignored. The optional addr is 40 hex digits (0x prefix allowed).
func ParseManifest(data []byte) ([]ManifestMember, error) {
	var out []ManifestMember
	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "member" || len(fields) < 4 || len(fields) > 5 {
			return nil, fmt.Errorf("world manifest line %d: want `member <name> <bin> <abi> [addr]`, got %q", ln, line)
		}
		m := ManifestMember{Name: fields[1], Bin: fields[2], ABI: fields[3]}
		if seen[m.Name] {
			return nil, fmt.Errorf("world manifest line %d: duplicate member %q", ln, m.Name)
		}
		seen[m.Name] = true
		if len(fields) == 5 {
			a, err := parseAddress(fields[4])
			if err != nil {
				return nil, fmt.Errorf("world manifest line %d: %v", ln, err)
			}
			m.Addr = a
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseAddress(s string) (state.Address, error) {
	s = strings.TrimPrefix(s, "0x")
	var a state.Address
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 20 {
		return a, fmt.Errorf("bad address %q (want 40 hex digits)", s)
	}
	copy(a[:], b)
	return a, nil
}
