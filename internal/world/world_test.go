package world

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/experiments"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/ingest"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
	"mufuzz/internal/state"
)

const fixturesDir = "../../fixtures"

func loadFixture(t *testing.T, name string) fuzz.Target {
	t.Helper()
	bin, err := os.ReadFile(filepath.Join(fixturesDir, name+".bin"))
	if err != nil {
		t.Fatalf("fixture missing (regen with `go run ./cmd/corpusgen -fixtures fixtures`): %v", err)
	}
	abiJSON, err := os.ReadFile(filepath.Join(fixturesDir, name+".abi.json"))
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := ingest.LoadHex(string(bin), abiJSON)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

// TestWorldSeparationBankReentrant is the tentpole's detection gate, run
// source-free on the bundled fixture exactly the way the CI world-smoke job
// drives the CLI. The bank notifies the withdrawer with a ZERO-value call
// before paying out via 2300-stipend transfer: the single-contract engine's
// heuristic reentrancy oracle (which demands a reentry enabled by a
// value-bearing call) must stay silent, while the world campaign — same
// budget, same seed, attacker synthesis on — must crack RE through an
// actual reentrant schedule confirmed by state divergence.
func TestWorldSeparationBankReentrant(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns are slow")
	}
	plainTgt := loadFixture(t, "bank-reentrant")
	plain := fuzz.NewTargetCampaign(plainTgt, fuzz.Options{
		Strategy: fuzz.MuFuzz(), Seed: experiments.WorldGateSeed,
		Iterations: experiments.WorldGateBudget, Workers: 1,
	}).Run()
	if len(plain.Findings) != 0 {
		t.Fatalf("single-contract engine flagged the bank: %v — the fixture no longer separates", plain.BugClasses)
	}

	worldTgt := loadFixture(t, "bank-reentrant")
	c := fuzz.NewTargetCampaign(worldTgt, fuzz.Options{
		Strategy: fuzz.MuFuzz(), Seed: experiments.WorldGateSeed,
		Iterations: experiments.WorldGateBudget, Workers: 1,
		World: &fuzz.WorldOptions{Attacker: NewModel(worldTgt.Methods())},
	})
	res := c.Run()
	if !res.BugClasses[oracle.RE] {
		t.Fatalf("world campaign did not crack RE (classes %v)", res.BugClasses)
	}

	// The proof of concept must replay: same witnessed verdict, divergence
	// included, on a detached engine — and carry an attacker spec.
	repro := res.Repro[oracle.RE]
	if len(repro) == 0 || len(repro[0].Attacker) == 0 {
		t.Fatalf("RE repro missing or carries no attacker spec: %v", repro)
	}
	if !c.Replay(repro).BugClasses[oracle.RE] {
		t.Fatal("RE repro does not replay")
	}
	min := c.MinimizeForBug(repro, oracle.RE)
	if !c.Replay(min).BugClasses[oracle.RE] {
		t.Fatal("minimized RE repro does not replay")
	}
	t.Logf("RE repro minimized %d -> %d transactions", len(repro), len(min))
}

// TestWitnessedUDProxyDelegate: a world campaign on the delegatecall proxy
// must produce a witnessed UD finding — the proxy actually delegatecalled
// the synthesized attacker's code — not just a taint shape.
func TestWitnessedUDProxyDelegate(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns are slow")
	}
	tgt := loadFixture(t, "proxy-delegate")
	res := fuzz.NewTargetCampaign(tgt, fuzz.Options{
		Strategy: fuzz.MuFuzz(), Seed: experiments.WorldGateSeed,
		Iterations: experiments.WorldGateBudget, Workers: 1,
		World: &fuzz.WorldOptions{Attacker: NewModel(tgt.Methods())},
	}).Run()
	if !res.BugClasses[oracle.UD] {
		t.Fatalf("witnessed UD not found on proxy (classes %v)", res.BugClasses)
	}
}

// TestEmptyWorldIsPlainCampaign pins the normalization contract: a world
// that adds nothing (no members, no attacker) runs the exact single-contract
// engine — identical coverage, executions, findings, and queue sequences
// for the same seed.
func TestEmptyWorldIsPlainCampaign(t *testing.T) {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		t.Fatal(err)
	}
	opts := fuzz.Options{Strategy: fuzz.MuFuzz(), Seed: 42, Iterations: 600, Workers: 1}
	plainC := fuzz.NewCampaign(comp, opts)
	plain := plainC.Run()

	wopts := opts
	wopts.World = &fuzz.WorldOptions{}
	worldC := fuzz.NewCampaign(comp, wopts)
	world := worldC.Run()

	if plain.Coverage != world.Coverage || plain.Executions != world.Executions ||
		len(plain.Findings) != len(world.Findings) {
		t.Fatalf("empty world diverged: cov %v vs %v, execs %d vs %d",
			plain.Coverage, world.Coverage, plain.Executions, world.Executions)
	}
	if !reflect.DeepEqual(plainC.QueueSequences(), worldC.QueueSequences()) {
		t.Fatal("empty world produced different queue sequences")
	}
}

// TestMultiContractCampaign runs a two-contract world — the bank as primary
// plus the token as a secondary member — and checks the cross-contract
// plumbing: qualified member functions enter sequences with their callee
// index, member constructors follow the anchor, and the campaign still
// drives primary coverage.
func TestMultiContractCampaign(t *testing.T) {
	bank := loadFixture(t, "bank-reentrant")
	token := loadFixture(t, "erc20")
	c := fuzz.NewTargetCampaign(bank, fuzz.Options{
		Strategy: fuzz.MuFuzz(), Seed: 1, Iterations: 800, Workers: 1, MaxSeqLen: 12,
		World: &fuzz.WorldOptions{
			Members: []fuzz.WorldMember{{Name: "token", Target: token}},
		},
	})
	res := c.Run()
	if res.CoveredEdges == 0 {
		t.Fatal("no primary coverage in multi-contract world")
	}
	sawMember := false
	for _, seq := range c.QueueSequences() {
		for _, tx := range seq {
			if tx.Callee == 1 {
				sawMember = true
				if tx.Func[:6] != "token." {
					t.Fatalf("callee 1 with unqualified func %q", tx.Func)
				}
			}
		}
	}
	if !sawMember {
		t.Fatal("no member-contract transaction reached the seed queue")
	}
}

// TestWorldSnapshotAttackerResume pins snapshot v3 for attacker-synthesis
// campaigns: a paused world campaign round-trips through the text encoding
// (attacker specs ride on the serialized sequences), refuses to resume
// without an attacker model, and — resupplied with one — finishes with the
// uninterrupted run's exact results.
func TestWorldSnapshotAttackerResume(t *testing.T) {
	tgt := loadFixture(t, "bank-reentrant")
	world := func() *fuzz.WorldOptions { return &fuzz.WorldOptions{Attacker: NewModel(tgt.Methods())} }
	opts := fuzz.Options{Strategy: fuzz.MuFuzz(), Seed: 3, Iterations: 1200, Workers: 1, World: world()}

	fullOpts := opts
	fullOpts.World = world()
	fullC := fuzz.NewTargetCampaign(tgt, fullOpts)
	full := fullC.Run()

	c := fuzz.NewTargetCampaign(tgt, opts)
	if _, done := c.RunSlice(context.Background(), 3); done {
		t.Fatal("campaign finished before the pause point; grow the budget")
	}
	enc := c.Snapshot().EncodeBytes()
	if !bytes.Contains(enc, []byte("\nworld attacker=1")) {
		t.Fatal("attacker mode missing from snapshot encoding")
	}
	snap, err := fuzz.DecodeSnapshot(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.EncodeBytes(), enc) {
		t.Fatal("attacker snapshot encode/decode/encode is not byte-stable")
	}
	if _, err := fuzz.ResumeTargetCampaign(tgt, snap); err == nil {
		t.Fatal("ResumeTargetCampaign accepted an attacker-campaign snapshot")
	}
	resumed, err := fuzz.ResumeWorldCampaign(tgt, world(), snap)
	if err != nil {
		t.Fatal(err)
	}
	res := resumed.Run()
	if res.Coverage != full.Coverage || res.Executions != full.Executions ||
		!reflect.DeepEqual(res.BugClasses, full.BugClasses) {
		t.Fatalf("resumed attacker campaign diverged: cov %v vs %v, execs %d vs %d, classes %v vs %v",
			res.Coverage, full.Coverage, res.Executions, full.Executions, res.BugClasses, full.BugClasses)
	}
	// Compare queues by canonical encoding: the text round trip turns empty
	// Args/Attacker slices into nil ones, which DeepEqual would flag.
	fullQ, resQ := fullC.QueueSequences(), resumed.QueueSequences()
	if len(fullQ) != len(resQ) {
		t.Fatalf("resumed queue has %d sequences, uninterrupted %d", len(resQ), len(fullQ))
	}
	for i := range fullQ {
		if !bytes.Equal(fuzz.EncodeSequence(fullQ[i]), fuzz.EncodeSequence(resQ[i])) {
			t.Fatalf("resumed queue sequence %d diverged:\n%s\nvs\n%s",
				i, fuzz.EncodeSequence(fullQ[i]), fuzz.EncodeSequence(resQ[i]))
		}
	}
}

func TestBucketID(t *testing.T) {
	bank := loadFixture(t, "bank-reentrant")
	token := loadFixture(t, "erc20")
	ab, ba := BucketID(bank, token), BucketID(token, bank)
	if ab != ba {
		t.Fatalf("bucket depends on member order: %s vs %s", ab, ba)
	}
	if solo := BucketID(bank); solo == ab {
		t.Fatal("different worlds share a bucket")
	}
	if len(ab) != len("world-")+12 {
		t.Fatalf("unexpected bucket shape %q", ab)
	}
}

func TestParseManifest(t *testing.T) {
	members, err := ParseManifest([]byte(`
# world manifest
member token fixtures/erc20.bin fixtures/erc20.abi.json
member vault v.bin v.abi.json 0x00000000000000000000000000000000000000c9
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 || members[0].Name != "token" || members[1].Addr != state.AddressFromUint(0xc9) {
		t.Fatalf("bad parse: %+v", members)
	}
	for _, bad := range []string{
		"member dup a b\nmember dup c d\n",
		"member short a\n",
		"bogus line here ok\n",
		"member x a b notanaddress\n",
	} {
		if _, err := ParseManifest([]byte(bad)); err == nil {
			t.Errorf("manifest %q parsed without error", bad)
		}
	}
}
