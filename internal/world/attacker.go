// Package world builds multi-contract adversarial campaigns: it synthesizes
// fuzzer-controlled attacker contracts from mutable specs, identifies world
// corpus buckets, and parses world manifests. The fuzz engine consumes it
// only through the fuzz.AttackerModel / fuzz.WorldOptions seams.
package world

import (
	"math/rand"

	"mufuzz/internal/abi"
	"mufuzz/internal/evm"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/u256"
)

// AttackerSpec is the decoded behavior of a synthesized attacker contract:
// when called with enough gas, it re-enters its caller with a chosen
// selector and calldata, up to Depth concurrent nested callbacks, and
// optionally reverts after (or instead of) the callback. The spec is seed
// material — the campaign mutates its encoded form on the sequence anchor —
// so every field is bounded and every byte string decodes deterministically.
type AttackerSpec struct {
	// Selector is the 4-byte function selector the callback re-enters on the
	// calling contract.
	Selector [4]byte
	// Depth bounds concurrent nested callbacks (1..MaxDepth). The compiled
	// contract tracks live depth in storage slot 0.
	Depth int
	// Revert makes the attacker revert instead of returning cleanly — the
	// unhandled-exception axis of the callback surface.
	Revert bool
	// Args are the 32-bit-word arguments appended after the selector
	// (0..MaxArgs words).
	Args []u256.Int
}

const (
	// specVersion is the encoding version byte; unknown versions decode to
	// "invalid" (the attacker stays an EOA).
	specVersion = 1
	// MaxDepth bounds AttackerSpec.Depth.
	MaxDepth = 3
	// MaxArgs bounds the callback calldata to selector + MaxArgs words.
	MaxArgs = 3
	// gasFloor arms the callback only when the incoming call forwards real
	// gas: 2300-stipend transfers fall below it, so the attacker behaves as
	// a passive receiver on payout paths (re-entering on a stipend would
	// out-of-gas the transfer and revert the very call being attacked).
	gasFloor = 50_000
)

// EncodeSpec serializes a spec: version, selector, depth, flags, arg count,
// then the arg words. The encoding is canonical — Encode(Decode(b)) == b for
// every valid b — so checkpoint hashing and snapshots stay byte-stable.
func EncodeSpec(s AttackerSpec) []byte {
	d := s.Depth
	if d < 1 {
		d = 1
	}
	if d > MaxDepth {
		d = MaxDepth
	}
	args := s.Args
	if len(args) > MaxArgs {
		args = args[:MaxArgs]
	}
	out := make([]byte, 0, 8+32*len(args))
	out = append(out, specVersion)
	out = append(out, s.Selector[:]...)
	out = append(out, byte(d))
	var flags byte
	if s.Revert {
		flags |= 1
	}
	out = append(out, flags, byte(len(args)))
	for _, w := range args {
		b := w.Bytes32()
		out = append(out, b[:]...)
	}
	return out
}

// DecodeSpec parses an encoded spec. ok is false for nil, truncated,
// out-of-range, or unknown-version encodings.
func DecodeSpec(enc []byte) (AttackerSpec, bool) {
	var s AttackerSpec
	if len(enc) < 8 || enc[0] != specVersion {
		return s, false
	}
	copy(s.Selector[:], enc[1:5])
	s.Depth = int(enc[5])
	if s.Depth < 1 || s.Depth > MaxDepth {
		return s, false
	}
	if enc[6]&^1 != 0 {
		return s, false
	}
	s.Revert = enc[6]&1 != 0
	n := int(enc[7])
	if n > MaxArgs || len(enc) != 8+32*n {
		return s, false
	}
	for i := 0; i < n; i++ {
		s.Args = append(s.Args, u256.FromBytes(enc[8+32*i:8+32*(i+1)]))
	}
	return s, true
}

// CompileSpec lowers an encoded spec to deployable runtime bytecode — the
// attacker-contract template. Layout:
//
//	entry:   armed = GAS > gasFloor        (stipend receives stay passive)
//	         if armed && SLOAD(0) < Depth  -> reenter
//	done:    STOP (or REVERT per spec)
//	reenter: SSTORE(0, SLOAD(0)+1)         (live-depth counter)
//	         mem[0..] = selector ++ args
//	         CALL(gas=GAS, to=CALLER, value=0, in=calldata)  ; POP status
//	         SSTORE(0, SLOAD(0)-1)
//	         -> done
//
// The re-entrant CALL forwards full gas with zero value, so the victim's
// trace records a reentry NOT enabled by a value call — exactly the schedule
// the heuristic single-contract oracle cannot witness. Invalid specs
// compile to nil (the attacker account stays an EOA).
func CompileSpec(enc []byte) []byte {
	spec, ok := DecodeSpec(enc)
	if !ok {
		return nil
	}
	a := evm.NewAssembler()
	// arm gate first: the stipend path must cost almost nothing.
	a.PushUint(gasFloor).Op(evm.GAS).Op(evm.GT)
	a.JumpITo("armed")
	a.Label("done")
	if spec.Revert {
		a.PushUint(0).PushUint(0).Op(evm.REVERT)
	} else {
		a.Op(evm.STOP)
	}
	a.Label("armed")
	a.PushUint(uint64(spec.Depth))
	a.PushUint(0).Op(evm.SLOAD)
	a.Op(evm.LT) // live depth < Depth
	a.JumpITo("reenter")
	a.JumpTo("done")
	a.Label("reenter")
	// slot0++
	a.PushUint(1).PushUint(0).Op(evm.SLOAD).Op(evm.ADD)
	a.PushUint(0).Op(evm.SSTORE)
	// calldata: selector ++ args, packed into 32-byte MSTORE words.
	data := make([]byte, 4+32*len(spec.Args))
	copy(data, spec.Selector[:])
	for i, w := range spec.Args {
		b := w.Bytes32()
		copy(data[4+32*i:], b[:])
	}
	for off := 0; off < len(data); off += 32 {
		var word [32]byte
		copy(word[:], data[off:])
		a.PushBytes(word[:]).PushUint(uint64(off)).Op(evm.MSTORE)
	}
	// CALL(gas, to=CALLER, value=0, in=[0,len), out=[0,0)); operands pushed
	// in reverse so gas ends on top.
	a.PushUint(0).PushUint(0)
	a.PushUint(uint64(len(data)))
	a.PushUint(0).PushUint(0)
	a.Op(evm.CALLER).Op(evm.GAS)
	a.Op(evm.CALL).Op(evm.POP)
	// slot0--
	a.PushUint(1).PushUint(0).Op(evm.SLOAD).Op(evm.SUB)
	a.PushUint(0).Op(evm.SSTORE)
	a.JumpTo("done")
	code, err := a.Build()
	if err != nil {
		return nil
	}
	return code
}

// Model implements fuzz.AttackerModel over a victim's callable methods: the
// default spec re-enters the first method, and mutation explores selectors,
// depth, calldata words, and the revert flag.
type Model struct {
	selectors [][4]byte
	// argPool seeds callback argument words (mutation also draws fresh
	// random words).
	argPool []u256.Int
}

// NewModel builds an attacker model whose callback targets the given
// methods (typically the primary target's, constructor excluded).
func NewModel(methods []abi.Method) *Model {
	m := &Model{argPool: []u256.Int{u256.Zero, u256.One, u256.New(2), u256.New(1 << 16)}}
	for _, fn := range methods {
		m.selectors = append(m.selectors, fn.Selector())
	}
	return m
}

var _ fuzz.AttackerModel = (*Model)(nil)

// Default returns the initial spec: re-enter the first method once, no
// arguments, return cleanly.
func (m *Model) Default() []byte {
	s := AttackerSpec{Depth: 1}
	if len(m.selectors) > 0 {
		s.Selector = m.selectors[0]
	}
	return EncodeSpec(s)
}

// Mutate derives a new spec: one random move over the callback surface.
// Invalid inputs restart from Default.
func (m *Model) Mutate(enc []byte, rng *rand.Rand) []byte {
	s, ok := DecodeSpec(enc)
	if !ok {
		s, _ = DecodeSpec(m.Default())
	}
	switch rng.Intn(5) {
	case 0:
		if len(m.selectors) > 0 {
			s.Selector = m.selectors[rng.Intn(len(m.selectors))]
		}
	case 1:
		s.Depth = 1 + rng.Intn(MaxDepth)
	case 2:
		// revert stays rare: a reverting callback kills most schedules.
		s.Revert = rng.Intn(4) == 0
	case 3:
		n := rng.Intn(MaxArgs + 1)
		args := make([]u256.Int, n)
		for i := range args {
			args[i] = m.argPool[rng.Intn(len(m.argPool))]
		}
		s.Args = args
	default:
		if len(s.Args) > 0 {
			s.Args[rng.Intn(len(s.Args))] = u256.New(rng.Uint64())
		} else {
			s.Args = []u256.Int{u256.New(rng.Uint64())}
		}
	}
	return EncodeSpec(s)
}

// Compile lowers an encoded spec to runtime bytecode (nil for invalid).
func (m *Model) Compile(enc []byte) []byte {
	return CompileSpec(enc)
}
