package world

import (
	"bytes"
	"math/rand"
	"testing"

	"mufuzz/internal/abi"
	"mufuzz/internal/u256"
)

func testMethods() []abi.Method {
	return []abi.Method{
		{Name: "deposit", Payable: true},
		{Name: "withdraw"},
		{Name: "seed", Payable: true},
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []AttackerSpec{
		{Depth: 1},
		{Selector: [4]byte{0xde, 0xad, 0xbe, 0xef}, Depth: 3, Revert: true},
		{Selector: [4]byte{1, 2, 3, 4}, Depth: 2, Args: []u256.Int{u256.One, u256.New(77)}},
	}
	for _, s := range specs {
		enc := EncodeSpec(s)
		got, ok := DecodeSpec(enc)
		if !ok {
			t.Fatalf("decode failed for %+v", s)
		}
		if !bytes.Equal(EncodeSpec(got), enc) {
			t.Fatalf("encoding not canonical: % x vs % x", EncodeSpec(got), enc)
		}
		if got.Depth != s.Depth || got.Revert != s.Revert || got.Selector != s.Selector || len(got.Args) != len(s.Args) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, s)
		}
	}
}

func TestSpecDecodeRejects(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{2, 0, 0, 0, 0, 1, 0, 0}, // wrong version
		{1, 0, 0, 0, 0, 0, 0, 0}, // depth 0
		{1, 0, 0, 0, 0, byte(MaxDepth + 1), 0, 0}, // depth over cap
		{1, 0, 0, 0, 0, 1, 2, 0},                  // unknown flag bit
		{1, 0, 0, 0, 0, 1, 0, byte(MaxArgs + 1)},  // arg count over cap
		{1, 0, 0, 0, 0, 1, 0, 1},                  // truncated args
		EncodeSpec(AttackerSpec{Depth: 1})[:7],    // truncated header
	}
	for _, enc := range bad {
		if _, ok := DecodeSpec(enc); ok {
			t.Errorf("decode accepted invalid spec % x", enc)
		}
		if code := CompileSpec(enc); code != nil {
			t.Errorf("compile produced code for invalid spec % x", enc)
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	enc := EncodeSpec(AttackerSpec{Selector: [4]byte{9, 9, 9, 9}, Depth: 2, Args: []u256.Int{u256.One}})
	a, b := CompileSpec(enc), CompileSpec(enc)
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatalf("compile not deterministic or empty: %d vs %d bytes", len(a), len(b))
	}
}

// TestModelMutationsStayValid drives the model the way the campaign does:
// every mutation chain must yield specs that decode, compile, and stay
// within bounds (the checkpoint cache hashes the raw bytes — an invalid
// spec would silently demote the attacker to an EOA mid-campaign).
func TestModelMutationsStayValid(t *testing.T) {
	m := NewModel(testMethods())
	rng := rand.New(rand.NewSource(7))
	enc := m.Default()
	for i := 0; i < 500; i++ {
		enc = m.Mutate(enc, rng)
		s, ok := DecodeSpec(enc)
		if !ok {
			t.Fatalf("mutation %d produced undecodable spec % x", i, enc)
		}
		if s.Depth < 1 || s.Depth > MaxDepth || len(s.Args) > MaxArgs {
			t.Fatalf("mutation %d out of bounds: %+v", i, s)
		}
		if CompileSpec(enc) == nil {
			t.Fatalf("mutation %d does not compile: % x", i, enc)
		}
	}
}

// TestMutateDoesNotAliasInput pins the AttackerModel contract: Mutate must
// not modify its input (specs are shared across cloned sequences).
func TestMutateDoesNotAliasInput(t *testing.T) {
	m := NewModel(testMethods())
	rng := rand.New(rand.NewSource(3))
	enc := m.Default()
	orig := append([]byte(nil), enc...)
	for i := 0; i < 200; i++ {
		m.Mutate(enc, rng)
		if !bytes.Equal(enc, orig) {
			t.Fatalf("Mutate modified its input at iteration %d", i)
		}
	}
}
