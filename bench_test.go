// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation (§V). Each benchmark prints the corresponding
// rows/series through b.Log on the first iteration and reports throughput
// metrics so `go test -bench=. -benchmem` doubles as the experiment driver.
//
// Budgets here are scaled down from the benchtab defaults so the full suite
// completes in minutes; run `go run ./cmd/benchtab -exp all` for the
// full-size reproduction.
package mufuzz_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/experiments"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
)

const (
	benchIters  = 1200 // per-contract execution budget
	benchSmallN = 8
	benchLargeN = 4
	benchSeed   = 1
)

// BenchmarkMotivatingExample reproduces the §III-B claim: only fuzzers with
// function repetition reach the Crowdsale deep branch.
func BenchmarkMotivatingExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Motivating(benchIters, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			experiments.PrintMotivating(&buf, rows)
			b.Log("\n" + buf.String())
			for _, r := range rows {
				if r.Fuzzer == "MuFuzz" && !r.DeepBranch {
					b.Error("MuFuzz must reach the deep branch")
				}
			}
		}
	}
}

// BenchmarkFig5SmallCoverage regenerates the Fig. 5(a) series.
func BenchmarkFig5SmallCoverage(b *testing.B) {
	gens := corpus.GenerateSmall(benchSeed, benchSmallN)
	for i := 0; i < b.N; i++ {
		curves, err := experiments.CoverageOverTime(gens, experiments.StandardFuzzers(), benchIters, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			experiments.PrintCoverageCurves(&buf, "Fig. 5(a) analog", curves)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkFig5LargeCoverage regenerates the Fig. 5(b) series.
func BenchmarkFig5LargeCoverage(b *testing.B) {
	gens := corpus.GenerateLarge(benchSeed, benchLargeN)
	for i := 0; i < b.N; i++ {
		curves, err := experiments.CoverageOverTime(gens, experiments.StandardFuzzers(), benchIters*2, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			experiments.PrintCoverageCurves(&buf, "Fig. 5(b) analog", curves)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkFig6OverallCoverage regenerates the Fig. 6 bars.
func BenchmarkFig6OverallCoverage(b *testing.B) {
	small := corpus.GenerateSmall(benchSeed, benchSmallN)
	for i := 0; i < b.N; i++ {
		bars, err := experiments.OverallCoverage(small, experiments.StandardFuzzers(), benchIters, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			experiments.PrintCoverageBars(&buf, "Fig. 6 analog (small)", bars)
			b.Log("\n" + buf.String())
			// shape check: MuFuzz should lead
			best := bars[0]
			for _, bar := range bars {
				if bar.Coverage > best.Coverage {
					best = bar
				}
			}
			if best.Fuzzer != "MuFuzz" {
				b.Logf("note: %s led this reduced-budget run", best.Fuzzer)
			}
		}
	}
}

// BenchmarkTable2Datasets regenerates the dataset summary.
func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, err := experiments.Datasets(benchSeed, benchSmallN, benchLargeN, benchLargeN)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			experiments.PrintDatasets(&buf, stats)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkTable3BugDetection regenerates the TP/FN table over the labelled
// suite for every tool.
func BenchmarkTable3BugDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.BugDetection(
			corpus.VulnSuite(), corpus.SafeSuite(),
			experiments.StandardTools(), benchIters, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			experiments.PrintDetectionTable(&buf, results)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkFig7Ablation regenerates the component ablation.
func BenchmarkFig7Ablation(b *testing.B) {
	gens := corpus.GenerateSmall(benchSeed+100, benchSmallN)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablation(gens, benchIters, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			experiments.PrintAblation(&buf, "Fig. 7 analog (small)", rows)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkTable4RealWorld regenerates the case study on complex contracts.
func BenchmarkTable4RealWorld(b *testing.B) {
	gens := corpus.GenerateComplex(benchSeed+200, benchLargeN)
	for i := 0; i < b.N; i++ {
		res, err := experiments.CaseStudy(gens, benchIters*2, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			experiments.PrintCaseStudy(&buf, res)
			b.Log("\n" + buf.String())
		}
	}
}

// --- micro benchmarks of the fuzzing hot path ---

// BenchmarkCampaignThroughput measures raw sequence executions per second on
// the Crowdsale contract (the fuzzer's end-to-end hot path), once on the
// sequential engine and once with the batch executor fanned across all
// cores. `go run ./cmd/benchtab -exp campaign` emits the same measurement as
// machine-readable JSON for the perf trajectory.
func BenchmarkCampaignThroughput(b *testing.B) {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				res := fuzz.Run(comp, fuzz.Options{
					Strategy:   fuzz.MuFuzz(),
					Seed:       int64(i),
					Iterations: 500,
					Workers:    workers,
				})
				total += res.Executions
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "execs/s")
		})
	}
}

// BenchmarkCompile measures compiler throughput on a large generated
// contract.
func BenchmarkCompile(b *testing.B) {
	gen := corpus.GenerateLarge(3, 1)[0]
	b.SetBytes(int64(len(gen.Source)))
	for i := 0; i < b.N; i++ {
		if _, err := minisol.Compile(gen.Source); err != nil {
			b.Fatal(err)
		}
	}
}
