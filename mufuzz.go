// Package mufuzz is the public API of the MuFuzz smart-contract fuzzer — a
// reproduction of "MuFuzz: Sequence-Aware Mutation and Seed Mask Guidance
// for Blockchain Smart Contract Fuzzing" (ICDE 2024).
//
// The three-call happy path:
//
//	comp, err := mufuzz.Compile(source)            // MiniSol → bytecode+ABI+AST
//	res := mufuzz.Fuzz(comp, mufuzz.Options{       // run a campaign
//	    Strategy:   mufuzz.MuFuzz(),
//	    Iterations: 5000,
//	})
//	for _, f := range res.Findings { ... }         // nine-class bug findings
//
// Baseline strategies (SFuzz, ConFuzzius, Smartian, IRFuzz) run on the same
// engine for comparisons, NewCampaign exposes the lower-level campaign with
// replay/minimization, and the corpus/experiment drivers used to regenerate
// the paper's tables live in internal/corpus and internal/experiments
// (reachable through the cmd/benchtab and cmd/corpusgen binaries).
//
// The engine is a coordinator/executor architecture. Set Options.Workers to
// fan each energy round's batch of mutated children across N executor
// goroutines, each owning its own EVM, state copy, and trace buffer, with
// outcomes merged deterministically on the coordinator: Workers 1 (the
// default) is the sequential engine, reproducible across machines for a
// fixed Seed; Workers N > 1 is reproducible for a fixed (Seed, N) pair; a
// negative value uses all CPU cores.
package mufuzz

import (
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
	"mufuzz/internal/staticcheck"
)

// Compiled is a compiled contract: EVM bytecode, ABI, typed AST, and branch
// site metadata.
type Compiled = minisol.Compiled

// Options configures a fuzzing campaign (budget, seed, strategy).
type Options = fuzz.Options

// Strategy selects which MuFuzz components a campaign uses; baselines are
// expressed as partial configurations.
type Strategy = fuzz.Strategy

// Result is a campaign outcome: coverage, findings, timeline, PoCs.
type Result = fuzz.Result

// Campaign is the lower-level fuzzing engine with replay and minimization.
type Campaign = fuzz.Campaign

// Sequence is an ordered list of transactions (constructor first).
type Sequence = fuzz.Sequence

// Finding is one detected vulnerability.
type Finding = oracle.Finding

// BugClass identifies one of the nine vulnerability classes.
type BugClass = oracle.BugClass

// The nine bug classes of the paper's Table I.
const (
	BD = oracle.BD // block dependency
	UD = oracle.UD // unprotected delegatecall
	EF = oracle.EF // ether freezing
	IO = oracle.IO // integer over-/under-flow
	RE = oracle.RE // reentrancy
	US = oracle.US // unprotected selfdestruct
	SE = oracle.SE // strict ether equality
	TO = oracle.TO // tx.origin use
	UE = oracle.UE // unhandled exception
)

// AllBugClasses lists every bug class in report order.
var AllBugClasses = oracle.AllClasses

// Compile parses, type-checks, and compiles a MiniSol contract.
func Compile(source string) (*Compiled, error) {
	return minisol.Compile(source)
}

// Fuzz runs one fuzzing campaign over a compiled contract.
func Fuzz(comp *Compiled, opts Options) *Result {
	return fuzz.Run(comp, opts)
}

// NewCampaign builds a campaign without running it, exposing Replay,
// MinimizeForBug/MinimizeForEdge, and coverage inspection.
func NewCampaign(comp *Compiled, opts Options) *Campaign {
	return fuzz.NewCampaign(comp, opts)
}

// MuFuzz returns the full strategy: sequence-aware mutation, mask-guided
// seed mutation, and dynamic energy adjustment all enabled.
func MuFuzz() Strategy { return fuzz.MuFuzz() }

// SFuzz returns the sFuzz-like baseline strategy.
func SFuzz() Strategy { return fuzz.SFuzz() }

// ConFuzzius returns the ConFuzzius-like baseline strategy.
func ConFuzzius() Strategy { return fuzz.ConFuzzius() }

// Smartian returns the Smartian-like baseline strategy.
func Smartian() Strategy { return fuzz.Smartian() }

// IRFuzz returns the IR-Fuzz-like baseline strategy.
func IRFuzz() Strategy { return fuzz.IRFuzz() }

// Ablations returns the three single-component-removed MuFuzz variants used
// by the Fig. 7 experiment.
func Ablations() []Strategy { return fuzz.Ablations() }

// StaticFinding is a finding from the pattern-based static analyzer.
type StaticFinding = staticcheck.Finding

// AnalyzeStatic runs the static analyzer baseline (no execution) over a
// compiled contract.
func AnalyzeStatic(comp *Compiled) []StaticFinding {
	return staticcheck.Analyze(comp)
}
