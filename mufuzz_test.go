package mufuzz_test

import (
	"fmt"
	"testing"

	"mufuzz"
)

const facadeSrc = `
contract Piggy {
    mapping(address => uint256) bal;
    function put() public payable { bal[msg.sender] += msg.value; }
    function take(uint256 n) public {
        bal[msg.sender] -= n;
        msg.sender.transfer(n);
    }
}`

func TestPublicAPIEndToEnd(t *testing.T) {
	comp, err := mufuzz.Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Contract.Name != "Piggy" {
		t.Errorf("contract name = %q", comp.Contract.Name)
	}
	res := mufuzz.Fuzz(comp, mufuzz.Options{
		Strategy:   mufuzz.MuFuzz(),
		Seed:       1,
		Iterations: 800,
	})
	if res.Coverage <= 0 {
		t.Fatal("no coverage")
	}
	// take(n) underflows for n > balance
	if !res.BugClasses[mufuzz.IO] {
		t.Errorf("IO not detected; classes = %v", res.BugClasses)
	}
	// a proof-of-concept sequence is recorded for each class found
	if _, ok := res.Repro[mufuzz.IO]; !ok {
		t.Error("IO PoC sequence missing")
	}
}

func TestPublicAPIMinimization(t *testing.T) {
	comp, err := mufuzz.Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	c := mufuzz.NewCampaign(comp, mufuzz.Options{Strategy: mufuzz.MuFuzz(), Seed: 2, Iterations: 800})
	res := c.Run()
	seq, ok := res.Repro[mufuzz.IO]
	if !ok {
		t.Skip("IO not found in this short campaign")
	}
	min := c.MinimizeForBug(seq, mufuzz.IO)
	if len(min) > len(seq) {
		t.Error("minimization grew the sequence")
	}
	if !c.Replay(min).BugClasses[mufuzz.IO] {
		t.Error("minimized PoC no longer triggers the bug")
	}
}

func TestPublicAPIStaticAnalyzer(t *testing.T) {
	comp, err := mufuzz.Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	findings := mufuzz.AnalyzeStatic(comp)
	classes := map[mufuzz.BugClass]bool{}
	for _, f := range findings {
		classes[f.Class] = true
	}
	if !classes[mufuzz.IO] {
		t.Errorf("static analyzer missed the unguarded arithmetic: %v", findings)
	}
}

func TestStrategyCatalog(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []mufuzz.Strategy{
		mufuzz.MuFuzz(), mufuzz.SFuzz(), mufuzz.ConFuzzius(),
		mufuzz.Smartian(), mufuzz.IRFuzz(),
	} {
		if s.Name == "" || names[s.Name] {
			t.Errorf("bad or duplicate strategy name %q", s.Name)
		}
		names[s.Name] = true
	}
	if len(mufuzz.Ablations()) != 4 {
		t.Error("four ablation variants expected")
	}
	if len(mufuzz.AllBugClasses) != 9 {
		t.Error("nine bug classes expected")
	}
}

// Example demonstrates the three-call happy path of the public API.
func Example() {
	comp, err := mufuzz.Compile(`
contract Demo {
    uint256 total;
    function add(uint256 n) public { total -= n; }
}`)
	if err != nil {
		panic(err)
	}
	res := mufuzz.Fuzz(comp, mufuzz.Options{
		Strategy:   mufuzz.MuFuzz(),
		Seed:       1,
		Iterations: 300,
	})
	fmt.Println("found IO:", res.BugClasses[mufuzz.IO])
	// Output: found IO: true
}
