// Coverage-race runs the four fuzzers of the paper's Fig. 5 side by side on
// one generated contract and prints their coverage progress as the budget is
// consumed — a single-contract live view of the coverage-over-time curves.
package main

import (
	"fmt"
	"log"

	"mufuzz/internal/corpus"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
)

func main() {
	// One deterministic large contract: deep phase chains + strict guards.
	gen := corpus.GenerateLarge(99, 1)[0]
	comp, err := minisol.Compile(gen.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contract %s: %d functions, %d branch sites, injected bugs %v\n\n",
		gen.Name, len(comp.Contract.Functions), len(comp.Branches), gen.Labels)

	const budget = 4000
	specs := []fuzz.Strategy{fuzz.MuFuzz(), fuzz.IRFuzz(), fuzz.ConFuzzius(), fuzz.SFuzz()}
	checkpoints := []int{100, 250, 500, 1000, 2000, 4000}

	type lane struct {
		name   string
		points []float64
		final  *fuzz.Result
	}
	lanes := make([]lane, len(specs))
	for i, strat := range specs {
		res := fuzz.Run(comp, fuzz.Options{Strategy: strat, Seed: 5, Iterations: budget})
		l := lane{name: strat.Name, final: res}
		for _, cp := range checkpoints {
			cov := 0.0
			for _, tp := range res.Timeline {
				if tp.Executions <= cp && tp.Coverage > cov {
					cov = tp.Coverage
				}
			}
			l.points = append(l.points, cov)
		}
		lanes[i] = l
	}

	fmt.Printf("%-12s", "execs")
	for _, cp := range checkpoints {
		fmt.Printf("%8d", cp)
	}
	fmt.Printf("%10s\n", "bugs")
	for _, l := range lanes {
		fmt.Printf("%-12s", l.name)
		for _, p := range l.points {
			fmt.Printf("%7.1f%%", p*100)
		}
		fmt.Printf("%10d\n", len(l.final.BugClasses))
	}

	fmt.Println("\nascii race (each # is 2.5% coverage):")
	for _, l := range lanes {
		n := int(l.final.Coverage * 40)
		fmt.Printf("  %-12s %5.1f%% %s\n", l.name, l.final.Coverage*100, repeat('#', n))
	}
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
