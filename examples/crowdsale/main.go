// Crowdsale walks through the paper's §III motivating example step by step:
// the data-flow analysis (Fig. 3), the derived transaction sequence, the
// sequence-aware RAW mutation, and the fuzzing outcome on the deep
// phase == 1 branch that plain fuzzers cannot reach.
package main

import (
	"fmt"
	"log"

	"mufuzz/internal/analysis"
	"mufuzz/internal/corpus"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
)

func main() {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		log.Fatal(err)
	}

	// --- Step 1: data-flow dependency analysis (paper Fig. 3) ---
	df := analysis.AnalyzeDataflow(comp.Contract)
	fmt.Println("state-variable read/write dependencies (paper Fig. 3):")
	for _, fn := range df.Funcs {
		fmt.Printf("  %-10s reads=%v writes=%v branch-reads=%v\n",
			fn.Name, fn.Reads.Sorted(), fn.Writes.Sorted(), fn.BranchReads.Sorted())
	}

	// --- Step 2: sequence derivation (writers before readers) ---
	fmt.Printf("\nderived transaction order: constructor → %v\n", df.DependencyOrder())

	// --- Step 3: sequence-aware mutation targets ---
	fmt.Printf("RAW repeat candidates (functions to execute consecutively): %v\n",
		df.RepeatCandidates())
	inv, _ := df.FuncByName("invest")
	fmt.Printf("  invest has a read-after-write on %v — the 'invested < goal' branch\n",
		inv.RAW.Sorted())

	// --- Step 4: fuzz with and without sequence-aware mutation ---
	var withdrawIf uint64
	for _, s := range comp.Branches {
		if s.Func == "withdraw" && s.Kind == minisol.BranchIf {
			withdrawIf = s.PC
		}
	}
	fmt.Println("\nfuzzing the deep branch `if (phase == 1)` in withdraw:")
	for _, strat := range []fuzz.Strategy{fuzz.MuFuzz(), fuzz.SFuzz()} {
		c := fuzz.NewCampaign(comp, fuzz.Options{Strategy: strat, Seed: 7, Iterations: 2000})
		res := c.Run()
		reached := c.EdgeCovered(withdrawIf, false)
		verdict := "MISSED  — cannot generate invest→invest"
		if reached {
			verdict = "REACHED — sequence mutation ran invest twice"
		}
		fmt.Printf("  %-8s %s (coverage %.1f%%)\n", strat.Name, verdict, res.Coverage*100)
	}
}
