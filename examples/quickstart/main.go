// Quickstart: compile a contract, fuzz it for a few seconds with MuFuzz, and
// print coverage plus findings — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
)

// A token with two classic bugs: an unguarded subtraction (integer
// underflow) and an unchecked send (unhandled exception).
const src = `
contract QuickToken {
    mapping(address => uint256) balances;
    uint256 totalSupply = 1000000;

    function mint(uint256 amount) public {
        require(amount < 10000);
        balances[msg.sender] += amount;
    }
    function burn(uint256 amount) public {
        balances[msg.sender] -= amount; // BUG: underflows when amount > balance
        totalSupply -= amount;
    }
    function payout(address to, uint256 amount) public {
        to.send(amount); // BUG: failure silently ignored
    }
}`

func main() {
	// 1. Compile MiniSol source to EVM bytecode + ABI + AST.
	comp, err := minisol.Compile(src)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Printf("compiled %s: %d bytes, %d functions, %d branch sites\n\n",
		comp.Contract.Name, len(comp.Code), len(comp.Contract.Functions), len(comp.Branches))

	// 2. Run a MuFuzz campaign: sequence-aware mutation + mask-guided seed
	//    mutation + dynamic energy adjustment.
	res := fuzz.Run(comp, fuzz.Options{
		Strategy:   fuzz.MuFuzz(),
		Seed:       1,
		Iterations: 3000,
	})

	// 3. Inspect the result.
	fmt.Printf("executed %d transaction sequences in %v\n", res.Executions, res.Elapsed.Round(1e6))
	fmt.Printf("branch coverage: %.1f%% (%d/%d edges)\n\n", res.Coverage*100, res.CoveredEdges, res.TotalEdges)
	if len(res.Findings) == 0 {
		fmt.Println("no bugs found")
		return
	}
	fmt.Println("findings:")
	for _, f := range res.Findings {
		fmt.Printf("  [%s] %s\n", f.Class, f.Description)
	}
}
