// Vulnhunt sweeps the labelled vulnerability suite (the paper's D2 analog)
// with MuFuzz and reports per-class detection against ground truth — a
// miniature of the Table III experiment with full per-contract detail.
package main

import (
	"fmt"
	"log"

	"mufuzz/internal/corpus"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
)

func main() {
	suite := corpus.VulnSuite()
	perClass := map[oracle.BugClass][2]int{} // [found, labelled]

	fmt.Printf("sweeping %d labelled vulnerable contracts with MuFuzz\n\n", len(suite))
	for i, entry := range suite {
		comp, err := minisol.Compile(entry.Source)
		if err != nil {
			log.Fatalf("%s: %v", entry.Name, err)
		}
		res := fuzz.Run(comp, fuzz.Options{
			Strategy:   fuzz.MuFuzz(),
			Seed:       int64(i) + 1,
			Iterations: 2500,
		})
		status := "ok"
		for _, c := range entry.Labels {
			counts := perClass[c]
			counts[1]++
			if res.BugClasses[c] {
				counts[0]++
			} else {
				status = "MISSED " + string(c)
			}
			perClass[c] = counts
		}
		hard := ""
		if entry.Hard {
			hard = " (deep)"
		}
		fmt.Printf("  %-26s%-7s labels=%v coverage=%5.1f%%  %s\n",
			entry.Name, hard, entry.Labels, res.Coverage*100, status)
	}

	fmt.Println("\nper-class recall:")
	for _, c := range oracle.AllClasses {
		counts := perClass[c]
		if counts[1] == 0 {
			continue
		}
		fmt.Printf("  %-4s %d/%d\n", c, counts[0], counts[1])
	}
}
