// Command mufuzz fuzzes one contract — compiled from MiniSol source or
// ingested source-free from deployed bytecode + ABI JSON — and reports
// branch coverage and detected vulnerabilities.
//
// Usage:
//
//	mufuzz -file contract.sol [-strategy mufuzz|sfuzz|confuzzius|irfuzz]
//	       [-iters 4000] [-seed 1] [-time 10s] [-workers 1] [-v]
//	       [-corpus-dir DIR] [-resume snapshot] [-snapshot-out snapshot]
//	       [-cpuprofile cpu.out] [-memprofile mem.out]
//	       [-mutexprofile mutex.out] [-blockprofile block.out]
//	mufuzz -example crowdsale|game    # fuzz a built-in paper example
//	mufuzz -bytecode code.bin -abi contract.abi.json   # fuzz deployed bytecode
//	mufuzz -bytecode bank.bin -abi bank.abi.json \
//	       -bytecode token.bin -abi token.abi.json -attacker   # world campaign
//	mufuzz -bytecode bank.bin -abi bank.abi.json -world world.txt
//
// -bytecode takes hex EVM bytecode (0x prefix optional; creation code is
// detected and its runtime extracted) and -abi the standard Solidity ABI
// JSON; the fuzzer recovers branch sites and per-function storage
// dependencies from the code itself, so sequence-aware mutation and energy
// scheduling run without source. Corpus-store seeds for such targets are
// bucketed by codehash.
//
// Repeating -bytecode/-abi deploys every pair into one shared world: the
// first pair is the primary target, later pairs become member contracts
// (named after their bin file) whose functions enter sequences qualified
// ("token.transfer"). -world FILE declares members in a manifest instead —
// one `member <name> <bin> <abi> [addr]` line each, paths relative to the
// manifest. -attacker additionally synthesizes a fuzzer-controlled attacker
// contract whose callback behavior (re-entered selector, calldata, nesting
// depth, revert flag) is mutated alongside the transaction sequence, arming
// the witnessed reentrancy/unchecked-delegatecall oracles. World corpus
// seeds are bucketed by the keccak of the sorted member codehashes, so any
// campaign on the same contract set cross-pollinates.
//
// -workers N fans each energy round's batch of mutated children across N
// executor goroutines (0 = all CPU cores). N=1 is the sequential engine,
// fully reproducible across machines for a fixed seed; N>1 is reproducible
// for a fixed (seed, N) pair.
//
// -corpus-dir connects the campaign to a persistent seed store: seeds other
// campaigns on the same contract exported are injected at startup, and the
// final queue is exported back, deduplicated by coverage fingerprint.
//
// SIGINT stops the campaign cleanly mid-round. With -snapshot-out the
// coordinator state is serialized at exit — whether interrupted or run to
// budget — so a later run with -resume continues where this one stopped.
//
// Exit status: 0 = clean run without findings, 1 = usage or internal error,
// 2 = the oracles reported findings (CI-friendly: a red pipeline means a
// detected vulnerability).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"mufuzz/internal/corpus"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/ingest"
	"mufuzz/internal/minisol"
	"mufuzz/internal/report"
	"mufuzz/internal/state"
	"mufuzz/internal/store"
	"mufuzz/internal/world"
)

// multiFlag collects a repeatable string flag in declaration order.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	os.Exit(run())
}

// writeLookupProfile dumps a named runtime profile (mutex, block) to path.
func writeLookupProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mufuzz: %sprofile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "mufuzz: %sprofile: %v\n", name, err)
	}
}

func run() int {
	var (
		file      = flag.String("file", "", "MiniSol source file to fuzz")
		example   = flag.String("example", "", "built-in example: crowdsale | crowdsale-buggy | game")
		strategy  = flag.String("strategy", "mufuzz", "fuzzer strategy: mufuzz | sfuzz | confuzzius | irfuzz | smartian")
		iters     = flag.Int("iters", 4000, "transaction-sequence execution budget")
		seed      = flag.Int64("seed", 1, "campaign random seed")
		budget    = flag.Duration("time", 0, "optional wall-clock budget (e.g. 10s)")
		workers   = flag.Int("workers", 1, "executor goroutines per energy round (0 = NumCPU)")
		verbose   = flag.Bool("v", false, "print per-finding details")
		minimize  = flag.Bool("minimize", false, "shrink and print a proof-of-concept sequence per bug class")
		jsonOut   = flag.String("json", "", "also write a machine-readable report to this file")
		corpusDir = flag.String("corpus-dir", "", "persistent seed store: import shared seeds, export the final queue")
		resume    = flag.String("resume", "", "resume from a campaign snapshot file")
		snapOut   = flag.String("snapshot-out", "", "write a resumable snapshot here on SIGINT (or at exit)")
		worldFile = flag.String("world", "", "world manifest: `member <name> <bin> <abi> [addr]` lines declaring member contracts")
		attacker  = flag.Bool("attacker", false, "synthesize a fuzzer-controlled attacker contract into the world")
		noCmpFeed = flag.Bool("no-cmp-feedback", false, "disable comparison-operand feedback and mined dictionaries (ablation)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (after the campaign) to this file")
		mutexProf = flag.String("mutexprofile", "", "write a mutex-contention profile (after the campaign) to this file")
		blockProf = flag.String("blockprofile", "", "write a goroutine-blocking profile (after the campaign) to this file")
	)
	var bytecodes, abiFiles multiFlag
	flag.Var(&bytecodes, "bytecode", "hex EVM bytecode file: fuzz source-free (requires -abi; repeat the pair for world members)")
	flag.Var(&abiFiles, "abi", "Solidity ABI JSON file for the matching -bytecode")
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mufuzz: cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mufuzz: cpuprofile:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mufuzz: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mufuzz: memprofile:", err)
			}
		}()
	}
	// Contention profiles for the parallel engine: where worker goroutines
	// fight over locks (-mutexprofile) and where they park — pool queue,
	// reorder buffer, shard writes (-blockprofile). Sampling is enabled only
	// when asked: both profilers tax the hot path.
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeLookupProfile("mutex", *mutexProf)
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(1)
		defer writeLookupProfile("block", *blockProf)
	}

	strat, ok := fuzz.PresetByName(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "mufuzz: unknown strategy %q\n", *strategy)
		return 1
	}
	if *noCmpFeed {
		strat.Name += " w/o comparison feedback"
		strat.CmpFeedback = false
		strat.MinedDictionary = false
	}

	target, name, err := loadTarget(*file, *example, bytecodes, abiFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mufuzz:", err)
		return 1
	}
	fmt.Printf("target %s: %d bytes of code, %d functions, %d branch sites\n",
		target.Name(), len(target.Code()), len(target.Methods()), len(target.Branches()))

	// World assembly: members from extra -bytecode/-abi pairs, then the
	// manifest, then the synthesized attacker. bucket is the corpus-store
	// key — the world bucket when members are present, else the target name.
	worldOpts, bucket, err := buildWorld(target, bytecodes, abiFiles, *worldFile, *attacker)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mufuzz:", err)
		return 1
	}
	if worldOpts != nil {
		names := make([]string, len(worldOpts.Members))
		for i, m := range worldOpts.Members {
			names[i] = m.Name
		}
		desc := strings.Join(names, ", ")
		if *attacker {
			if desc != "" {
				desc += ", "
			}
			desc += "synthesized attacker"
		}
		fmt.Printf("world: %s (corpus bucket %s)\n", desc, bucket)
	}

	var st *store.Store
	if *corpusDir != "" {
		if st, err = store.Open(*corpusDir); err != nil {
			fmt.Fprintln(os.Stderr, "mufuzz:", err)
			return 1
		}
	}

	var campaign *fuzz.Campaign
	if *resume != "" {
		data, err := os.ReadFile(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mufuzz:", err)
			return 1
		}
		snap, err := fuzz.DecodeSnapshot(strings.NewReader(string(data)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mufuzz:", err)
			return 1
		}
		if worldOpts != nil {
			campaign, err = fuzz.ResumeWorldCampaign(target, worldOpts, snap)
		} else {
			campaign, err = fuzz.ResumeTargetCampaign(target, snap)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mufuzz:", err)
			return 1
		}
		fmt.Printf("resumed snapshot %s (%d executions done)\n", *resume, snap.Executions)
	} else {
		// The library resolves worker counts (Options.Workers: 0→1,
		// negative→all cores); map the CLI's "0 = all cores" convenience onto
		// that contract instead of duplicating the NumCPU resolution here.
		nWorkers := *workers
		if nWorkers == 0 {
			nWorkers = -1
		}
		campaign = fuzz.NewTargetCampaign(target, fuzz.Options{
			Strategy:   strat,
			Seed:       *seed,
			Iterations: *iters,
			TimeBudget: *budget,
			Workers:    nWorkers,
			World:      worldOpts,
		})
	}

	if st != nil {
		if n := importSeeds(campaign, st, bucket); n > 0 {
			fmt.Printf("imported %d shared corpus seed(s) from %s\n", n, *corpusDir)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	res := campaign.RunCtx(ctx)
	interrupted := ctx.Err() != nil
	stop()

	if st != nil {
		if n := exportSeeds(campaign, st, bucket); n > 0 {
			fmt.Printf("exported %d new corpus seed(s) to %s\n", n, *corpusDir)
		}
	}
	if interrupted {
		fmt.Println("\ninterrupted — campaign stopped cleanly mid-round")
	}
	if *snapOut != "" {
		if err := os.WriteFile(*snapOut, campaign.Snapshot().EncodeBytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mufuzz: snapshot:", err)
			return 1
		}
		fmt.Printf("snapshot written to %s — continue with -resume %s\n", *snapOut, *snapOut)
	}

	fmt.Printf("\n[%s] fuzzed %s in %v\n", res.Strategy, name, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  executions:      %d\n", res.Executions)
	fmt.Printf("  branch coverage: %.1f%% (%d/%d edges)\n", res.Coverage*100, res.CoveredEdges, res.TotalEdges)
	fmt.Printf("  seed queue:      %d entries, %d masks computed, %d sequence mutations\n",
		res.SeedQueueLen, res.MasksComputed, res.SequencesMutated)

	if len(res.Findings) > 0 {
		classes := make([]string, 0)
		for c := range res.BugClasses {
			classes = append(classes, string(c))
		}
		sort.Strings(classes)
		fmt.Printf("  findings:        %d (%s)\n", len(res.Findings), strings.Join(classes, ", "))
		if *verbose {
			for _, f := range res.Findings {
				fmt.Printf("    [%s] pc=%d %s\n", f.Class, f.PC, f.Description)
			}
		}
		if *minimize {
			fmt.Println("\nproof-of-concept sequences (minimized):")
			for class, seq := range res.Repro {
				min := campaign.MinimizeForBug(seq, class)
				fmt.Printf("  [%s] %s\n", class, min)
			}
		}
	} else {
		fmt.Println("  findings:        none")
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mufuzz:", err)
			return 1
		}
		werr := report.New(target.Name(), res).WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "mufuzz:", werr)
			return 1
		}
		fmt.Printf("\nJSON report written to %s\n", *jsonOut)
	}

	if len(res.Findings) > 0 {
		return 2 // CI-friendly: a finding is a red build
	}
	return 0
}

// importSeeds injects the store's shared corpus for this contract.
func importSeeds(c *fuzz.Campaign, st *store.Store, contract string) int {
	entries, err := st.Seeds(contract)
	if err != nil {
		return 0
	}
	var seqs []fuzz.Sequence
	for _, e := range entries {
		if seq, err := fuzz.DecodeSequence(e.Payload); err == nil {
			seqs = append(seqs, seq)
		}
	}
	return c.InjectSequences(seqs)
}

// exportSeeds writes the campaign's queue to the store, deduplicated by the
// coverage fingerprint of a detached replay.
func exportSeeds(c *fuzz.Campaign, st *store.Store, contract string) int {
	n := 0
	for _, seq := range c.QueueSequences() {
		fp := store.Fingerprint(c.ReplayCoverageEdges(seq))
		if wrote, err := st.PutSeed(contract, fp, fuzz.EncodeSequence(seq)); err == nil && wrote {
			n++
		}
	}
	return n
}

// loadBytecodeTarget ingests one bytecode + ABI file pair.
func loadBytecodeTarget(bin, abiFile string) (fuzz.Target, error) {
	codeHex, err := os.ReadFile(bin)
	if err != nil {
		return nil, err
	}
	abiJSON, err := os.ReadFile(abiFile)
	if err != nil {
		return nil, err
	}
	return ingest.LoadHex(string(codeHex), abiJSON)
}

// loadTarget resolves exactly one of the three target sources: MiniSol file,
// built-in example, or raw bytecode + ABI JSON (the first -bytecode/-abi
// pair; later pairs are world members, resolved by buildWorld).
func loadTarget(file, example string, bytecodes, abiFiles []string) (fuzz.Target, string, error) {
	sources := 0
	for _, set := range []bool{file != "", example != "", len(bytecodes) > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, "", fmt.Errorf("pass exactly one of -file, -example, or -bytecode")
	}

	if len(bytecodes) > 0 {
		if len(abiFiles) != len(bytecodes) {
			return nil, "", fmt.Errorf("%d -bytecode flag(s) but %d -abi flag(s); each -bytecode needs its -abi", len(bytecodes), len(abiFiles))
		}
		t, err := loadBytecodeTarget(bytecodes[0], abiFiles[0])
		if err != nil {
			return nil, "", err
		}
		return t, bytecodes[0], nil
	}
	if len(abiFiles) > 0 {
		return nil, "", fmt.Errorf("-abi requires a matching -bytecode")
	}

	var src, name string
	switch {
	case file != "":
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, "", err
		}
		src, name = string(b), file
	default:
		switch example {
		case "crowdsale":
			src, name = corpus.Crowdsale(), "crowdsale"
		case "crowdsale-buggy":
			src, name = corpus.CrowdsaleBuggy(), "crowdsale-buggy"
		case "game":
			src, name = corpus.Game(), "game"
		default:
			return nil, "", fmt.Errorf("unknown example %q", example)
		}
	}
	comp, err := minisol.Compile(src)
	if err != nil {
		return nil, "", fmt.Errorf("compile: %w", err)
	}
	return fuzz.MinisolTarget(comp), name, nil
}

// memberName derives a world-member name from its bin path: the base name
// with the extension stripped ("fixtures/erc20.bin" -> "erc20").
func memberName(bin string) string {
	base := filepath.Base(bin)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// buildWorld assembles the campaign's WorldOptions from the extra
// -bytecode/-abi pairs, the -world manifest (member paths resolve relative
// to the manifest's directory), and the -attacker switch. It returns nil
// options for a plain single-contract run, plus the corpus-store bucket:
// world.BucketID over all deployed code when members are present (so any
// campaign fuzzing the same contract set shares seeds, whoever launched
// it), else the primary target's name.
func buildWorld(primary fuzz.Target, bytecodes, abiFiles []string, manifest string, attacker bool) (*fuzz.WorldOptions, string, error) {
	var members []fuzz.WorldMember
	seen := map[string]bool{}
	add := func(name string, t fuzz.Target, addr state.Address) error {
		if seen[name] {
			return fmt.Errorf("duplicate world member %q", name)
		}
		seen[name] = true
		members = append(members, fuzz.WorldMember{Name: name, Target: t, Addr: addr})
		return nil
	}

	for i := 1; i < len(bytecodes) && i < len(abiFiles); i++ {
		t, err := loadBytecodeTarget(bytecodes[i], abiFiles[i])
		if err != nil {
			return nil, "", err
		}
		if err := add(memberName(bytecodes[i]), t, state.Address{}); err != nil {
			return nil, "", err
		}
	}

	if manifest != "" {
		data, err := os.ReadFile(manifest)
		if err != nil {
			return nil, "", err
		}
		decls, err := world.ParseManifest(data)
		if err != nil {
			return nil, "", err
		}
		dir := filepath.Dir(manifest)
		resolve := func(p string) string {
			if filepath.IsAbs(p) {
				return p
			}
			return filepath.Join(dir, p)
		}
		for _, m := range decls {
			t, err := loadBytecodeTarget(resolve(m.Bin), resolve(m.ABI))
			if err != nil {
				return nil, "", fmt.Errorf("world member %s: %w", m.Name, err)
			}
			if err := add(m.Name, t, m.Addr); err != nil {
				return nil, "", err
			}
		}
	}

	if len(members) == 0 && !attacker {
		return nil, primary.Name(), nil
	}
	w := &fuzz.WorldOptions{Members: members}
	if attacker {
		w.Attacker = world.NewModel(primary.Methods())
	}
	bucket := primary.Name()
	if len(members) > 0 {
		all := []fuzz.Target{primary}
		for _, m := range members {
			all = append(all, m.Target)
		}
		bucket = world.BucketID(all...)
	}
	return w, bucket, nil
}
