// Command mufuzz fuzzes one MiniSol contract and reports branch coverage and
// detected vulnerabilities.
//
// Usage:
//
//	mufuzz -file contract.sol [-strategy mufuzz|sfuzz|confuzzius|irfuzz]
//	       [-iters 4000] [-seed 1] [-time 10s] [-workers 1] [-v]
//	mufuzz -example crowdsale|game    # fuzz a built-in paper example
//
// -workers N fans each energy round's batch of mutated children across N
// executor goroutines (0 = all CPU cores). N=1 is the sequential engine,
// fully reproducible across machines for a fixed seed; N>1 is reproducible
// for a fixed (seed, N) pair.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mufuzz/internal/corpus"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/report"
)

func main() {
	var (
		file     = flag.String("file", "", "MiniSol source file to fuzz")
		example  = flag.String("example", "", "built-in example: crowdsale | crowdsale-buggy | game")
		strategy = flag.String("strategy", "mufuzz", "fuzzer strategy: mufuzz | sfuzz | confuzzius | irfuzz | smartian")
		iters    = flag.Int("iters", 4000, "transaction-sequence execution budget")
		seed     = flag.Int64("seed", 1, "campaign random seed")
		budget   = flag.Duration("time", 0, "optional wall-clock budget (e.g. 10s)")
		workers  = flag.Int("workers", 1, "executor goroutines per energy round (0 = NumCPU)")
		verbose  = flag.Bool("v", false, "print per-finding details")
		minimize = flag.Bool("minimize", false, "shrink and print a proof-of-concept sequence per bug class")
		jsonOut  = flag.String("json", "", "also write a machine-readable report to this file")
	)
	flag.Parse()

	src, name, err := loadSource(*file, *example)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mufuzz:", err)
		os.Exit(1)
	}

	strat, err := pickStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mufuzz:", err)
		os.Exit(1)
	}

	comp, err := minisol.Compile(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mufuzz: compile:", err)
		os.Exit(1)
	}
	fmt.Printf("contract %s: %d bytes of code, %d functions, %d branch sites\n",
		comp.Contract.Name, len(comp.Code), len(comp.Contract.Functions), len(comp.Branches))

	start := time.Now()
	// The library resolves worker counts (Options.Workers: 0→1, negative→all
	// cores); map the CLI's "0 = all cores" convenience onto that contract
	// instead of duplicating the NumCPU resolution here.
	nWorkers := *workers
	if nWorkers == 0 {
		nWorkers = -1
	}
	campaign := fuzz.NewCampaign(comp, fuzz.Options{
		Strategy:   strat,
		Seed:       *seed,
		Iterations: *iters,
		TimeBudget: *budget,
		Workers:    nWorkers,
	})
	res := campaign.Run()

	fmt.Printf("\n[%s] fuzzed %s in %v\n", strat.Name, name, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  executions:      %d\n", res.Executions)
	fmt.Printf("  branch coverage: %.1f%% (%d/%d edges)\n", res.Coverage*100, res.CoveredEdges, res.TotalEdges)
	fmt.Printf("  seed queue:      %d entries, %d masks computed, %d sequence mutations\n",
		res.SeedQueueLen, res.MasksComputed, res.SequencesMutated)

	if len(res.Findings) == 0 {
		fmt.Println("  findings:        none")
		return
	}
	classes := make([]string, 0)
	for c := range res.BugClasses {
		classes = append(classes, string(c))
	}
	fmt.Printf("  findings:        %d (%s)\n", len(res.Findings), strings.Join(classes, ", "))
	if *verbose {
		for _, f := range res.Findings {
			fmt.Printf("    [%s] pc=%d %s\n", f.Class, f.PC, f.Description)
		}
	}
	if *minimize {
		fmt.Println("\nproof-of-concept sequences (minimized):")
		for class, seq := range res.Repro {
			min := campaign.MinimizeForBug(seq, class)
			fmt.Printf("  [%s] %s\n", class, min)
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mufuzz:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := report.New(comp.Contract.Name, res).WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "mufuzz:", err)
			os.Exit(1)
		}
		fmt.Printf("\nJSON report written to %s\n", *jsonOut)
	}
}

func loadSource(file, example string) (src, name string, err error) {
	switch {
	case file != "" && example != "":
		return "", "", fmt.Errorf("pass either -file or -example, not both")
	case file != "":
		b, err := os.ReadFile(file)
		if err != nil {
			return "", "", err
		}
		return string(b), file, nil
	case example != "":
		switch example {
		case "crowdsale":
			return corpus.Crowdsale(), "crowdsale", nil
		case "crowdsale-buggy":
			return corpus.CrowdsaleBuggy(), "crowdsale-buggy", nil
		case "game":
			return corpus.Game(), "game", nil
		default:
			return "", "", fmt.Errorf("unknown example %q", example)
		}
	default:
		return "", "", fmt.Errorf("pass -file <contract.sol> or -example <name>")
	}
}

func pickStrategy(name string) (fuzz.Strategy, error) {
	switch strings.ToLower(name) {
	case "mufuzz":
		return fuzz.MuFuzz(), nil
	case "sfuzz":
		return fuzz.SFuzz(), nil
	case "confuzzius":
		return fuzz.ConFuzzius(), nil
	case "irfuzz", "ir-fuzz":
		return fuzz.IRFuzz(), nil
	case "smartian":
		return fuzz.Smartian(), nil
	default:
		return fuzz.Strategy{}, fmt.Errorf("unknown strategy %q", name)
	}
}
