// Command mufuzzd runs the MuFuzz campaign service: a multi-tenant fuzzing
// daemon that time-slices any number of concurrent campaigns over a bounded
// executor pool, shares corpus seeds between campaigns through a persistent
// store, and drains gracefully — every in-flight campaign is snapshotted so
// a restarted daemon resumes exactly where it stopped.
//
// Usage:
//
//	mufuzzd [-addr :8700] [-store mufuzz-store] [-slots 2]
//	        [-slice-rounds 8] [-workers 1] [-debug-addr localhost:6060]
//	        [-mutex-profile-fraction 5] [-block-profile-rate 10000]
//
// Submit and watch campaigns over the HTTP JSON API:
//
//	curl -X POST localhost:8700/v1/campaigns \
//	     -d '{"example":"crowdsale-buggy","iterations":20000}'
//	curl -X POST localhost:8700/v1/campaigns \
//	     -d '{"bytecode":"0x6000...","abi":[...],"iterations":20000}'   # source-free
//	curl localhost:8700/v1/campaigns/c0001
//	curl localhost:8700/v1/campaigns/c0001/findings?minimize=1
//	curl -X POST localhost:8700/v1/drain
//
// SIGINT/SIGTERM drain before exit; restarting with the same -store resumes
// every unfinished campaign.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -debug-addr pprof endpoints
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mufuzz/internal/service"
	"mufuzz/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8700", "HTTP listen address")
		storeDir    = flag.String("store", "mufuzz-store", "persistent store directory")
		slots       = flag.Int("slots", 2, "concurrent campaign slices (bounded executor pool)")
		sliceRounds = flag.Int("slice-rounds", 8, "energy rounds per scheduling slice")
		workers     = flag.Int("workers", 1, "default executor goroutines per campaign")
		iters       = flag.Int("iters", 20000, "default campaign budget when a spec omits one")
		debugAddr   = flag.String("debug-addr", "", "optional pprof listen address (e.g. localhost:6060); off when empty")
		mutexFrac   = flag.Int("mutex-profile-fraction", 0, "sample 1/n of mutex contention events for /debug/pprof/mutex (0 = off)")
		blockRate   = flag.Int("block-profile-rate", 0, "sample goroutine blocking events >= n ns for /debug/pprof/block (0 = off)")
	)
	flag.Parse()

	if *debugAddr != "" {
		// net/http/pprof registers its handlers on http.DefaultServeMux; serve
		// that mux on a separate listener so profiling endpoints never share a
		// port with the campaign API. The contention endpoints (mutex, block)
		// report nothing until their runtime sampling rates are set — opt in
		// with -mutex-profile-fraction / -block-profile-rate, since both tax
		// the executor hot path.
		if *mutexFrac > 0 {
			runtime.SetMutexProfileFraction(*mutexFrac)
		}
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
		}
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mufuzzd: debug-addr:", err)
			}
		}()
		fmt.Printf("mufuzzd: pprof debug server on http://%s/debug/pprof/\n", *debugAddr)
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mufuzzd:", err)
		os.Exit(1)
	}
	svc := service.New(service.Config{
		Store:             st,
		Slots:             *slots,
		SliceRounds:       *sliceRounds,
		Workers:           *workers,
		DefaultIterations: *iters,
	})
	if err := svc.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "mufuzzd:", err)
		os.Exit(1)
	}
	resumed := 0
	for _, s := range svc.Statuses() {
		if s.State == service.StateQueued || s.State == service.StateRunning {
			resumed++
		}
	}
	fmt.Printf("mufuzzd: listening on %s, store %s, %d slot(s), %d campaign(s) resumed\n",
		*addr, *storeDir, *slots, resumed)

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		fmt.Printf("mufuzzd: %v — draining\n", sig)
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mufuzzd:", err)
			os.Exit(1)
		}
		return
	}

	n := svc.Drain()
	fmt.Printf("mufuzzd: drained %d campaign(s) to %s\n", n, *storeDir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}
