// Command mufuzzd runs the MuFuzz campaign service: a multi-tenant fuzzing
// daemon that time-slices any number of concurrent campaigns over a bounded
// executor pool, shares corpus seeds between campaigns through a persistent
// store, and drains gracefully — every in-flight campaign is snapshotted so
// a restarted daemon resumes exactly where it stopped.
//
// Usage:
//
//	mufuzzd [-addr :8700] [-store mufuzz-store] [-slots 2]
//	        [-slice-rounds 8] [-workers 1] [-debug-addr localhost:6060]
//	        [-mutex-profile-fraction 5] [-block-profile-rate 10000]
//
// Submit and watch campaigns over the HTTP JSON API:
//
//	curl -X POST localhost:8700/v1/campaigns -H 'Content-Type: application/json' \
//	     -d '{"example":"crowdsale-buggy","iterations":20000}'
//	curl -X POST localhost:8700/v1/campaigns -H 'Content-Type: application/json' \
//	     -d '{"bytecode":"0x6000...","abi":[...],"iterations":20000}'   # source-free
//	curl localhost:8700/v1/campaigns/c0001
//	curl localhost:8700/v1/campaigns/c0001/findings?minimize=1
//	curl -X POST localhost:8700/v1/drain
//
// SIGINT/SIGTERM drain before exit; restarting with the same -store resumes
// every unfinished campaign.
//
// # Fleet modes
//
// The same binary runs the distributed fleet (see internal/fleet):
//
//	mufuzzd -coordinator [-addr :8700] [-store mufuzz-store] \
//	        [-lease-rounds 8] [-lease-ttl 10s]
//
// runs the fleet coordinator — a control plane that leases campaign slices
// to workers and assembles the migration-equivalence transcripts — and
//
//	mufuzzd -join http://coordinator:8700 [-worker-name node-a] [-addr :8701]
//
// runs a worker node that pulls and executes leased slices. Workers hold no
// durable state; killing one loses at most the slice in flight, which the
// coordinator re-leases after its TTL. Both modes serve /healthz and
// /readyz on -addr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -debug-addr pprof endpoints
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"mufuzz/internal/fleet"
	"mufuzz/internal/service"
	"mufuzz/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8700", "HTTP listen address")
		storeDir    = flag.String("store", "mufuzz-store", "persistent store directory")
		slots       = flag.Int("slots", 2, "concurrent campaign slices (bounded executor pool)")
		sliceRounds = flag.Int("slice-rounds", 8, "energy rounds per scheduling slice")
		workers     = flag.Int("workers", 1, "default executor goroutines per campaign")
		iters       = flag.Int("iters", 20000, "default campaign budget when a spec omits one")
		debugAddr   = flag.String("debug-addr", "", "optional pprof listen address (e.g. localhost:6060); off when empty")
		mutexFrac   = flag.Int("mutex-profile-fraction", 0, "sample 1/n of mutex contention events for /debug/pprof/mutex (0 = off)")
		blockRate   = flag.Int("block-profile-rate", 0, "sample goroutine blocking events >= n ns for /debug/pprof/block (0 = off)")

		coordinator = flag.Bool("coordinator", false, "run the fleet coordinator instead of the single-node service")
		leaseRounds = flag.Int("lease-rounds", 8, "coordinator: energy rounds per leased slice")
		leaseTTL    = flag.Duration("lease-ttl", 10*time.Second, "coordinator: lease lifetime without a heartbeat")
		join        = flag.String("join", "", "worker mode: coordinator base URL to pull leased slices from")
		workerName  = flag.String("worker-name", "", "worker mode: node name (default host:pid)")
	)
	flag.Parse()

	if *debugAddr != "" {
		// net/http/pprof registers its handlers on http.DefaultServeMux; serve
		// that mux on a separate listener so profiling endpoints never share a
		// port with the campaign API. The contention endpoints (mutex, block)
		// report nothing until their runtime sampling rates are set — opt in
		// with -mutex-profile-fraction / -block-profile-rate, since both tax
		// the executor hot path.
		if *mutexFrac > 0 {
			runtime.SetMutexProfileFraction(*mutexFrac)
		}
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
		}
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mufuzzd: debug-addr:", err)
			}
		}()
		fmt.Printf("mufuzzd: pprof debug server on http://%s/debug/pprof/\n", *debugAddr)
	}

	switch {
	case *coordinator && *join != "":
		fmt.Fprintln(os.Stderr, "mufuzzd: -coordinator and -join are mutually exclusive")
		os.Exit(1)
	case *coordinator:
		os.Exit(runCoordinator(*addr, *storeDir, *leaseRounds, *leaseTTL, *iters, *workers))
	case *join != "":
		os.Exit(runWorker(*addr, *join, *workerName))
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mufuzzd:", err)
		os.Exit(1)
	}
	svc := service.New(service.Config{
		Store:             st,
		Slots:             *slots,
		SliceRounds:       *sliceRounds,
		Workers:           *workers,
		DefaultIterations: *iters,
	})
	if err := svc.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "mufuzzd:", err)
		os.Exit(1)
	}
	resumed := 0
	for _, s := range svc.Statuses() {
		if s.State == service.StateQueued || s.State == service.StateRunning {
			resumed++
		}
	}
	fmt.Printf("mufuzzd: listening on %s, store %s, %d slot(s), %d campaign(s) resumed\n",
		*addr, *storeDir, *slots, resumed)

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		fmt.Printf("mufuzzd: %v — draining\n", sig)
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mufuzzd:", err)
			os.Exit(1)
		}
		return
	}

	n := svc.Drain()
	fmt.Printf("mufuzzd: drained %d campaign(s) to %s\n", n, *storeDir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// runCoordinator serves the fleet control plane until SIGINT/SIGTERM.
func runCoordinator(addr, storeDir string, rounds int, ttl time.Duration, iters, workers int) int {
	st, err := store.Open(storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mufuzzd:", err)
		return 1
	}
	co := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Store:             st,
		Rounds:            rounds,
		LeaseTTL:          ttl,
		DefaultIterations: iters,
		DefaultWorkers:    workers,
	})
	fmt.Printf("mufuzzd: fleet coordinator on %s, store %s, %d round(s)/slice, lease TTL %s\n",
		addr, storeDir, rounds, ttl)

	srv := &http.Server{Addr: addr, Handler: co.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("mufuzzd: %v — shutting down coordinator\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		return 0
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mufuzzd:", err)
			return 1
		}
		return 0
	}
}

// runWorker pulls and executes leased slices until SIGINT/SIGTERM. A
// slice in flight at shutdown is abandoned (never committed mid-slice);
// its lease lapses and the coordinator re-grants it elsewhere.
func runWorker(addr, coordinatorURL, name string) int {
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	client := fleet.NewClient(coordinatorURL, time.Now().UnixNano())
	w := fleet.NewWorker(name, client)

	// The worker serves its own liveness/readiness: ready once the
	// coordinator has answered readyz, so orchestrators gate on worker
	// readiness instead of sleep-and-poll.
	var ready atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"ok\":true,\"worker\":%q}\n", name)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"ready":false,"reason":"coordinator not reachable yet"}`)
			return
		}
		fmt.Fprintln(w, `{"ready":true}`)
	})
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mufuzzd:", err)
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("mufuzzd: %v — abandoning slice in flight and exiting\n", sig)
		cancel()
	}()

	fmt.Printf("mufuzzd: worker %s joining fleet at %s\n", name, coordinatorURL)
	if err := client.WaitReady(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mufuzzd: coordinator never became ready:", err)
		return 1
	}
	ready.Store(true)
	fmt.Printf("mufuzzd: worker %s ready\n", name)

	err := w.Run(ctx)
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	_ = srv.Shutdown(sctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "mufuzzd:", err)
		return 1
	}
	return 0
}
