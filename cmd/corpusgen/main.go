// Command corpusgen materializes the benchmark corpora to disk as MiniSol
// source files plus a labels manifest, so datasets can be inspected, diffed,
// or fed to external tools. With -fixtures it instead regenerates the
// bundled source-free fixtures (deployed bytecode hex + ABI JSON) the ingest
// pipeline fuzzes end to end.
//
// Usage:
//
//	corpusgen -out ./corpus-out [-seed 1] [-small 24] [-large 12] [-complex 12]
//	corpusgen -fixtures ./fixtures
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mufuzz/internal/corpus"
	"mufuzz/internal/minisol"
)

func main() {
	var (
		out      = flag.String("out", "corpus-out", "output directory")
		seed     = flag.Int64("seed", 1, "generator seed")
		nSmall   = flag.Int("small", 24, "number of D1-small contracts")
		nLarge   = flag.Int("large", 12, "number of D1-large contracts")
		nComplex = flag.Int("complex", 12, "number of D3 complex contracts")
		fixtures = flag.String("fixtures", "", "write the bundled bytecode+ABI fixtures to this directory instead")
	)
	flag.Parse()

	if *fixtures != "" {
		if err := writeFixtures(*fixtures); err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
		fmt.Printf("fixtures written to %s\n", *fixtures)
		return
	}

	var manifest strings.Builder
	write := func(dir, name, src string, labels []string) {
		full := filepath.Join(*out, dir)
		if err := os.MkdirAll(full, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
		path := filepath.Join(full, name+".sol")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&manifest, "%s/%s.sol\t%s\n", dir, name, strings.Join(labels, ","))
	}

	toStrings := func(labels []string) []string { return labels }
	_ = toStrings

	for _, g := range corpus.GenerateSmall(*seed, *nSmall) {
		write("d1-small", g.Name, g.Source, classStrings(g.Labels))
	}
	for _, g := range corpus.GenerateLarge(*seed, *nLarge) {
		write("d1-large", g.Name, g.Source, classStrings(g.Labels))
	}
	for _, g := range corpus.GenerateComplex(*seed, *nComplex) {
		write("d3-complex", g.Name, g.Source, classStrings(g.Labels))
	}
	for _, l := range corpus.VulnSuite() {
		write("d2-vuln", l.Name, l.Source, classStrings(l.Labels))
	}
	for _, l := range corpus.SafeSuite() {
		write("d2-safe", l.Name, l.Source, nil)
	}
	write("examples", "crowdsale", corpus.Crowdsale(), nil)
	write("examples", "crowdsale_buggy", corpus.CrowdsaleBuggy(), []string{"BD"})
	write("examples", "game", corpus.Game(), nil)

	if err := os.WriteFile(filepath.Join(*out, "MANIFEST.tsv"), []byte(manifest.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
	fmt.Printf("corpus written to %s (see MANIFEST.tsv for labels)\n", *out)
}

func classStrings[T ~string](labels []T) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = string(l)
	}
	return out
}

// fixtureSources names the contracts bundled as source-free fixtures: the
// ERC20-style token and the seeded-bug crowdsale the CI ingest-smoke job
// fuzzes through `mufuzz -bytecode -abi`, plus the magic-constant gate that
// separates the comparison-feedback ablation (crackable only with the mined
// dictionary on).
var fixtureSources = map[string]string{
	"erc20":           corpus.Token(),
	"crowdsale-buggy": corpus.CrowdsaleBuggy(),
	"magic-gate":      corpus.MagicGate(),
	"bank-reentrant":  corpus.BankReentrant(),
	"proxy-delegate":  corpus.ProxyDelegate(),
}

// writeFixtures compiles each fixture contract and writes <name>.bin
// (0x-prefixed runtime bytecode hex) plus <name>.abi.json (standard ABI
// JSON) — the on-chain artifact pair the ingest pipeline consumes.
func writeFixtures(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, src := range fixtureSources {
		comp, err := minisol.Compile(src)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		bin := "0x" + hex.EncodeToString(comp.Code) + "\n"
		if err := os.WriteFile(filepath.Join(dir, name+".bin"), []byte(bin), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name+".abi.json"), comp.ABI.EncodeJSON(), 0o644); err != nil {
			return err
		}
	}
	return nil
}
