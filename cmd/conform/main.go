// Command conform drives the conformance subsystem from the command line:
// recording and replaying deterministic campaign transcripts, running the
// differential engine matrix, the strategy matrix, and the corpus-wide
// detection gate. CI's conformance job runs `-mode diff`, a record/replay
// round trip, and the env-gated detection-gate test tier; humans use
// `-mode record`/`-mode replay` to pin down a divergence and `-mode gate`
// to reproduce the gate locally.
//
// Usage:
//
//	conform -mode diff [-contracts a,b,c] [-iters 400] [-seed 1] [-workers N] [-fixtures dir]
//	conform -mode gate [-iters 3000] [-seed 1]
//	conform -mode strategies [-contracts a] [-iters 1000] [-seed 1]
//	conform -mode record -contracts a -out a.transcript [-iters 400]
//	conform -mode replay -in a.transcript
//	conform -mode fleet-ref -spec spec.json -out ref.transcript
//
// Mode fleet-ref records the single-node reference transcript of a fleet
// campaign spec (a service CampaignSpec JSON file, canonicalized exactly
// as the fleet coordinator canonicalizes submissions): the bytes a
// coordinator's assembled transcript must equal no matter how many
// workers the campaign migrated across. CI's fleet smoke hashes this
// against the transcript of a campaign whose worker was killed mid-slice.
//
// Contract names come from the corpus: "crowdsale", "crowdsale-buggy",
// "game", or any labelled suite name (run `-mode list` to enumerate).
// Mode diff additionally runs the multi-contract world-w1/world-wN pair on
// the ingest fixtures (bank-reentrant primary + token member + synthesized
// attacker) when the fixture dir is present.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"mufuzz/internal/conformance"
	"mufuzz/internal/corpus"
	"mufuzz/internal/experiments"
	"mufuzz/internal/fleet"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/ingest"
	"mufuzz/internal/minisol"
	"mufuzz/internal/service"
	"mufuzz/internal/world"
)

// registry maps every named contract source available to the CLI.
func registry() map[string]string {
	out := map[string]string{
		"crowdsale":       corpus.Crowdsale(),
		"crowdsale-buggy": corpus.CrowdsaleBuggy(),
		"game":            corpus.Game(),
	}
	for _, l := range corpus.VulnSuite() {
		out[l.Name] = l.Source
	}
	for _, l := range corpus.SafeSuite() {
		out[l.Name] = l.Source
	}
	return out
}

// defaultDiffSet is the ≥3-contract set the CI conformance job exercises.
var defaultDiffSet = []string{"crowdsale", "crowdsale-buggy", "re_swc107_crossfn"}

func main() {
	var (
		mode      = flag.String("mode", "diff", "diff | gate | strategies | record | replay | fleet-ref | list")
		contracts = flag.String("contracts", "", "comma-separated contract names (default: the 3-contract diff set)")
		iters     = flag.Int("iters", 400, "iteration budget per campaign (gate defaults to the fixed gate budget)")
		seed      = flag.Int64("seed", 1, "campaign seed")
		workers   = flag.Int("workers", 0, "batched-class worker count (0 = NumCPU, capped at 8)")
		out       = flag.String("out", "", "transcript output path (modes record, fleet-ref)")
		in        = flag.String("in", "", "transcript input path (mode replay)")
		specPath  = flag.String("spec", "", "campaign spec JSON path (mode fleet-ref)")
		fixtures  = flag.String("fixtures", "fixtures", "ingest fixture dir for the world pair (mode diff)")
	)
	flag.Parse()

	names := defaultDiffSet
	if *contracts != "" {
		names = splitComma(*contracts)
	}
	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > 8 {
		w = 8
	}

	switch *mode {
	case "list":
		reg := registry()
		sorted := make([]string, 0, len(reg))
		for name := range reg {
			sorted = append(sorted, name)
		}
		sort.Strings(sorted)
		for _, name := range sorted {
			fmt.Println(name)
		}

	case "diff":
		failed := false
		for _, name := range names {
			comp := compile(name)
			results := conformance.DifferentialMatrix(name, comp, baseOptions(*seed, *iters), w)
			conformance.PrintMatrix(os.Stdout, results)
			for _, r := range results {
				if !r.Equal {
					failed = true
				}
			}
		}
		if results, ok := worldPair(*fixtures, *seed, *iters, w); ok {
			conformance.PrintMatrix(os.Stdout, results)
			for _, r := range results {
				if !r.Equal {
					failed = true
				}
			}
		}
		if failed {
			fmt.Fprintln(os.Stderr, "conform: differential matrix diverged")
			os.Exit(1)
		}

	case "strategies":
		for _, name := range names {
			comp := compile(name)
			rows := conformance.StrategyMatrix(name, comp, baseOptions(*seed, *iters))
			conformance.PrintStrategies(os.Stdout, name, rows)
		}

	case "gate":
		// Defaults mirror the gate test exactly (GateBudget/GateSeed); the
		// flags only override when explicitly set.
		budget := experiments.GateBudget
		if flagSet("iters") {
			budget = *iters
		}
		gateSeed := int64(experiments.GateSeed)
		if flagSet("seed") {
			gateSeed = *seed
		}
		report, err := experiments.DetectionGate(experiments.GatedSuites(), corpus.SafeSuite(), budget, gateSeed)
		if err != nil {
			fatal(err)
		}
		experiments.PrintGate(os.Stdout, report)
		if !report.Pass() {
			os.Exit(1)
		}

	case "record":
		if len(names) != 1 || *out == "" {
			fatal(fmt.Errorf("mode record needs exactly one -contracts name and -out"))
		}
		comp := compile(names[0])
		run := conformance.RecordCampaign(names[0], comp, baseOptions(*seed, *iters))
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := run.Transcript.Encode(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %s: %d executions, %d/%d edges, classes %v → %s\n",
			names[0], run.Result.Executions, run.Result.CoveredEdges, run.Result.TotalEdges,
			run.Transcript.Final.Classes, *out)

	case "replay":
		if *in == "" {
			fatal(fmt.Errorf("mode replay needs -in"))
		}
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		want, err := conformance.Decode(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		comp := compile(want.Contract)
		run, d := conformance.ReplayCheck(comp, want)
		if d != nil {
			fmt.Fprintf(os.Stderr, "conform: replay DIVERGED: %s\n", d)
			os.Exit(1)
		}
		if err := conformance.VerifySequences(run.Campaign, run.Transcript); err != nil {
			fmt.Fprintf(os.Stderr, "conform: sequence verification failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("replay of %s byte-identical (%d executions) and sequence-verified\n",
			want.Contract, len(want.Records))

	case "fleet-ref":
		if *specPath == "" || *out == "" {
			fatal(fmt.Errorf("mode fleet-ref needs -spec and -out"))
		}
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatal(err)
		}
		var spec service.CampaignSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			fatal(fmt.Errorf("bad spec %s: %w", *specPath, err))
		}
		// Defaults mirror the coordinator's (20000 iterations, 1 worker);
		// specs that pin both fields — as CI's do — are default-free.
		run, err := fleet.ReferenceTranscript(spec, 20000, 1)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, run.Transcript.EncodeBytes(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("fleet reference %s: %d executions, %d/%d edges, classes %v → %s\n",
			run.Name, run.Result.Executions, run.Result.CoveredEdges, run.Result.TotalEdges,
			run.Transcript.Final.Classes, *out)

	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// worldPair builds the world-w1/world-wN differential pair from the ingest
// fixtures: the reentrant bank as primary, the token as a member, attacker
// synthesis on — so member deployment, callee routing, and attacker-spec
// compilation all sit inside the equivalence check. Returns ok=false (with
// a stderr notice) when the fixture dir is absent, so the minisol half of
// mode diff still works away from the repo root.
func worldPair(dir string, seed int64, iters, workers int) ([]conformance.PairResult, bool) {
	load := func(name string) (fuzz.Target, error) {
		bin, err := os.ReadFile(filepath.Join(dir, name+".bin"))
		if err != nil {
			return nil, err
		}
		abiJSON, err := os.ReadFile(filepath.Join(dir, name+".abi.json"))
		if err != nil {
			return nil, err
		}
		return ingest.LoadHex(string(bin), abiJSON)
	}
	if _, err := load("bank-reentrant"); err != nil {
		fmt.Fprintf(os.Stderr, "conform: world pair skipped (%v; regen with `go run ./cmd/corpusgen -fixtures %s`)\n", err, dir)
		return nil, false
	}
	mk := func() (fuzz.Target, *fuzz.WorldOptions) {
		bank, err := load("bank-reentrant")
		if err != nil {
			fatal(err)
		}
		token, err := load("erc20")
		if err != nil {
			fatal(err)
		}
		return bank, &fuzz.WorldOptions{
			Members:  []fuzz.WorldMember{{Name: "token", Target: token}},
			Attacker: world.NewModel(bank.Methods()),
		}
	}
	return conformance.WorldDifferentialMatrix("bank-reentrant", mk, baseOptions(seed, iters), workers), true
}

func baseOptions(seed int64, iters int) fuzz.Options {
	return fuzz.Options{Strategy: fuzz.MuFuzz(), Seed: seed, Iterations: iters}
}

func compile(name string) *minisol.Compiled {
	src, ok := registry()[name]
	if !ok {
		fatal(fmt.Errorf("unknown contract %q (try -mode list)", name))
	}
	comp, err := minisol.Compile(src)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	return comp
}

func splitComma(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool { return r == ',' })
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "conform: %v\n", err)
	os.Exit(1)
}
