// Command disasm compiles a MiniSol contract and prints its EVM assembly,
// control-flow graph, branch sites, and data-flow dependency summary — the
// same artifacts the fuzzer's static analyses consume.
//
// Usage:
//
//	disasm -file contract.sol [-cfg] [-dataflow] [-asm]
//	disasm -example crowdsale -cfg -dataflow
package main

import (
	"flag"
	"fmt"
	"os"

	"mufuzz/internal/analysis"
	"mufuzz/internal/corpus"
	"mufuzz/internal/minisol"
)

func main() {
	var (
		file     = flag.String("file", "", "MiniSol source file")
		example  = flag.String("example", "", "built-in example: crowdsale | game")
		showAsm  = flag.Bool("asm", true, "print disassembly")
		showCFG  = flag.Bool("cfg", false, "print basic blocks and successors")
		showFlow = flag.Bool("dataflow", false, "print state-variable dependency summary")
	)
	flag.Parse()

	var src string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "disasm:", err)
			os.Exit(1)
		}
		src = string(b)
	case *example == "crowdsale":
		src = corpus.Crowdsale()
	case *example == "game":
		src = corpus.Game()
	default:
		fmt.Fprintln(os.Stderr, "disasm: pass -file or -example")
		os.Exit(1)
	}

	comp, err := minisol.Compile(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "disasm: compile:", err)
		os.Exit(1)
	}
	fmt.Printf("contract %s — %d bytes\n", comp.Contract.Name, len(comp.Code))
	fmt.Println("\nfunction entry points:")
	for name, pc := range comp.FuncEntry {
		fmt.Printf("  %-16s @ %d\n", name, pc)
	}
	fmt.Println("\nbranch sites:")
	for _, site := range comp.Branches {
		fmt.Printf("  pc=%-5d %-10s depth=%d in %s\n", site.PC, site.Kind, site.Depth, site.Func)
	}

	if *showAsm {
		fmt.Println("\ndisassembly:")
		for _, ins := range analysis.Disassemble(comp.Code) {
			if len(ins.Imm) > 0 {
				fmt.Printf("  %5d: %-8s 0x%x\n", ins.PC, ins.Op, ins.Imm)
			} else {
				fmt.Printf("  %5d: %s\n", ins.PC, ins.Op)
			}
		}
	}

	if *showCFG {
		cfg := analysis.BuildCFG(comp.Code)
		fmt.Printf("\ncontrol-flow graph: %d blocks, %d branch sites, %d vulnerable instructions\n",
			len(cfg.Order), cfg.CountBranches(), len(cfg.VulnPCs))
		for _, start := range cfg.Order {
			b := cfg.Blocks[start]
			vuln := ""
			if cfg.VulnReachableFrom(start) {
				vuln = " [vuln-reachable]"
			}
			fmt.Printf("  block %5d..%-5d succs=%v%s\n", b.Start, b.End, b.Succs, vuln)
		}
	}

	if *showFlow {
		df := analysis.AnalyzeDataflow(comp.Contract)
		fmt.Println("\nstate-variable dataflow:")
		for _, fn := range df.Funcs {
			fmt.Printf("  %-14s reads=%v writes=%v branch-reads=%v raw=%v\n",
				fn.Name, fn.Reads.Sorted(), fn.Writes.Sorted(), fn.BranchReads.Sorted(), fn.RAW.Sorted())
		}
		fmt.Printf("  dependency order: %v\n", df.DependencyOrder())
		fmt.Printf("  repeat candidates: %v\n", df.RepeatCandidates())
	}
}
