// Command disasm prints the static-analysis artifacts the fuzzer's feedback
// loops consume — EVM assembly, control-flow graph, branch sites, and the
// state dataflow summary — for a MiniSol contract (compiled from source) or
// for raw deployed bytecode (recovered source-free by internal/ingest).
//
// Usage:
//
//	disasm -file contract.sol [-cfg] [-dataflow] [-asm]
//	disasm -example crowdsale -cfg -dataflow
//	disasm -bytecode code.bin [-abi contract.abi.json] [-cfg] [-dataflow]
//
// In -bytecode mode the branch sites, function entries, and dataflow are
// recovered from the code itself: selector dispatch is pattern-matched, and
// per-function storage read/write slot sets come from abstract
// interpretation (constant slots, keccak mapping slots, ⊤ for the rest).
// Without -abi the dispatcher arms are listed by raw selector.
package main

import (
	"flag"
	"fmt"
	"os"

	"mufuzz/internal/analysis"
	"mufuzz/internal/corpus"
	"mufuzz/internal/evm"
	"mufuzz/internal/ingest"
	"mufuzz/internal/minisol"
)

func main() {
	var (
		file     = flag.String("file", "", "MiniSol source file")
		example  = flag.String("example", "", "built-in example: crowdsale | game")
		bytecode = flag.String("bytecode", "", "hex EVM bytecode file: disassemble source-free")
		abiFile  = flag.String("abi", "", "Solidity ABI JSON for -bytecode (names the recovered functions)")
		showAsm  = flag.Bool("asm", true, "print disassembly")
		showCFG  = flag.Bool("cfg", false, "print basic blocks and successors")
		showFlow = flag.Bool("dataflow", false, "print state dependency summary")
	)
	flag.Parse()

	if *bytecode != "" {
		if err := runBytecode(*bytecode, *abiFile, *showAsm, *showCFG, *showFlow); err != nil {
			fmt.Fprintln(os.Stderr, "disasm:", err)
			os.Exit(1)
		}
		return
	}

	var src string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "disasm:", err)
			os.Exit(1)
		}
		src = string(b)
	case *example == "crowdsale":
		src = corpus.Crowdsale()
	case *example == "game":
		src = corpus.Game()
	default:
		fmt.Fprintln(os.Stderr, "disasm: pass -file, -example, or -bytecode")
		os.Exit(1)
	}

	comp, err := minisol.Compile(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "disasm: compile:", err)
		os.Exit(1)
	}
	fmt.Printf("contract %s — %d bytes\n", comp.Contract.Name, len(comp.Code))
	fmt.Println("\nfunction entry points:")
	for name, pc := range comp.FuncEntry {
		fmt.Printf("  %-16s @ %d\n", name, pc)
	}
	fmt.Println("\nbranch sites:")
	for _, site := range comp.Branches {
		fmt.Printf("  pc=%-5d %-10s depth=%d in %s\n", site.PC, site.Kind, site.Depth, site.Func)
	}

	if *showAsm {
		printAsm(comp.Code)
	}
	if *showCFG {
		printCFG(analysis.BuildCFG(comp.Code))
	}
	if *showFlow {
		df := analysis.AnalyzeDataflow(comp.Contract)
		fmt.Println("\nstate-variable dataflow:")
		for _, fn := range df.Funcs {
			fmt.Printf("  %-14s reads=%v writes=%v branch-reads=%v raw=%v\n",
				fn.Name, fn.Reads.Sorted(), fn.Writes.Sorted(), fn.BranchReads.Sorted(), fn.RAW.Sorted())
		}
		fmt.Printf("  dependency order: %v\n", df.DependencyOrder())
		fmt.Printf("  repeat candidates: %v\n", df.RepeatCandidates())
	}
}

// runBytecode is the source-free mode: everything printed is recovered from
// the code (plus the ABI, when given, for function names and selectors).
func runBytecode(path, abiFile string, showAsm, showCFG, showFlow bool) error {
	codeHex, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	abiJSON := []byte(`[]`)
	if abiFile != "" {
		if abiJSON, err = os.ReadFile(abiFile); err != nil {
			return err
		}
	}
	t, err := ingest.LoadHex(string(codeHex), abiJSON)
	if err != nil {
		return err
	}
	fmt.Printf("target %s — %d bytes (codehash %x)\n", t.Name(), len(t.Code()), t.CodeHash())
	fmt.Println("\nrecovered dispatcher arms:")
	nameBySel := map[[4]byte]string{}
	for _, fs := range t.Storage() {
		if fs.Found {
			nameBySel[fs.Selector] = fs.Name
		}
	}
	for _, arm := range t.DispatcherArms() {
		name := nameBySel[arm.Selector]
		if name == "" {
			name = "(not in ABI)"
		}
		fmt.Printf("  sel=%x @ %-5d %s\n", arm.Selector, arm.Entry, name)
	}
	for _, fs := range t.Storage() {
		if !fs.Found {
			fmt.Printf("  sel=%x        %s (not found in dispatcher)\n", fs.Selector, fs.Name)
		}
	}
	fmt.Println("\nbranch sites (depth recovered from CFG):")
	for _, b := range t.Branches() {
		fmt.Printf("  pc=%-5d depth=%d\n", b.PC, b.Depth)
	}

	if showAsm {
		printAsm(t.Code())
	}
	if showCFG {
		printCFG(t.CFG())
	}
	if showFlow {
		fmt.Println("\nrecovered storage dataflow (slot keys):")
		for _, fs := range t.Storage() {
			fmt.Printf("  %-14s reads=%v writes=%v branch-reads=%v raw=%v\n",
				fs.Name, fs.Reads.Sorted(), fs.Writes.Sorted(), fs.BranchReads.Sorted(), fs.RAW.Sorted())
		}
		fmt.Printf("  dependency order: %v\n", t.DependencyOrder())
		fmt.Printf("  repeat candidates: %v\n", t.RepeatCandidates())
	}
	return nil
}

func printAsm(code []byte) {
	fmt.Println("\ndisassembly:")
	// evm.Decode is the tree's single decoder: the interpreter's IR compiler,
	// analysis.Disassemble, and ingest's dispatcher recovery all read it.
	for _, ins := range evm.Decode(code) {
		if len(ins.Imm) > 0 {
			fmt.Printf("  %5d: %-8s 0x%x\n", ins.PC, ins.Op, ins.Imm)
		} else {
			fmt.Printf("  %5d: %s\n", ins.PC, ins.Op)
		}
	}
	p := evm.CompileProgram(code)
	dests := 0
	for _, d := range p.JumpDests() {
		if d {
			dests++
		}
	}
	fmt.Printf("\ninterpreter IR: %d instructions, %d basic blocks, %d fused superinstructions, %d jumpdests\n",
		p.NumInstrs(), p.NumBlocks(), p.NumFused(), dests)
}

func printCFG(cfg *analysis.CFG) {
	fmt.Printf("\ncontrol-flow graph: %d blocks, %d branch sites, %d vulnerable instructions\n",
		len(cfg.Order), cfg.CountBranches(), len(cfg.VulnPCs))
	for _, start := range cfg.Order {
		b := cfg.Blocks[start]
		vuln := ""
		if cfg.VulnReachableFrom(start) {
			vuln = " [vuln-reachable]"
		}
		fmt.Printf("  block %5d..%-5d succs=%v%s\n", b.Start, b.End, b.Succs, vuln)
	}
}
