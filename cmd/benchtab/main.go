// Command benchtab regenerates every table and figure of the paper's
// evaluation section on the synthetic corpora.
//
// Usage:
//
//	benchtab -exp all
//	benchtab -exp fig5a|fig5b|fig6|table2|table3|fig7|table4|motivating
//	benchtab -exp campaign [-campaign-json BENCH_campaign.json]
//	         [-n 24] [-iters 2500] [-seed 1]
//	benchtab -exp service
//
// The campaign experiment measures end-to-end engine throughput (the
// BenchmarkCampaignThroughput hot path) at Workers ∈ {1, NumCPU} and writes
// the series as machine-readable JSON, so successive PRs have a perf
// trajectory to regress against. The service experiment measures the
// campaign-service scheduler's multiplexing overhead (N campaigns
// time-sliced over one slot vs N sequential engine runs) and merges the
// result into the same JSON.
//
// Absolute numbers differ from the paper (different corpora, different
// hardware); the comparisons — who wins, by roughly what factor — are the
// reproduction target. See EXPERIMENTS.md for the per-experiment analysis.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"mufuzz/internal/corpus"
	"mufuzz/internal/experiments"
	"mufuzz/internal/fleet"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/service"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all | fig5a | fig5b | fig6 | table2 | table3 | fig7 | table4 | motivating | campaign | service | fleet")
		n       = flag.Int("n", 24, "contracts per generated dataset")
		iters   = flag.Int("iters", 2500, "fuzzing budget (sequence executions) per contract")
		seed    = flag.Int64("seed", 1, "corpus + campaign seed")
		benchJS = flag.String("campaign-json", "BENCH_campaign.json", "output path for the campaign throughput JSON")
	)
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("  (%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table2", func() error {
		stats, err := experiments.Datasets(*seed, *n, *n/2, *n/2)
		if err != nil {
			return err
		}
		experiments.PrintDatasets(os.Stdout, stats)
		return nil
	})

	run("motivating", func() error {
		rows, err := experiments.Motivating(*iters, *seed)
		if err != nil {
			return err
		}
		experiments.PrintMotivating(os.Stdout, rows)
		return nil
	})

	run("fig5a", func() error {
		gens := corpus.GenerateSmall(*seed, *n)
		curves, err := experiments.CoverageOverTime(gens, experiments.StandardFuzzers(), *iters, *seed)
		if err != nil {
			return err
		}
		experiments.PrintCoverageCurves(os.Stdout,
			fmt.Sprintf("Fig. 5(a) analog — coverage over budget, %d small contracts", len(gens)), curves)
		return nil
	})

	run("fig5b", func() error {
		gens := corpus.GenerateLarge(*seed, *n/2)
		curves, err := experiments.CoverageOverTime(gens, experiments.StandardFuzzers(), *iters*2, *seed)
		if err != nil {
			return err
		}
		experiments.PrintCoverageCurves(os.Stdout,
			fmt.Sprintf("Fig. 5(b) analog — coverage over budget, %d large contracts", len(gens)), curves)
		return nil
	})

	run("fig6", func() error {
		small := corpus.GenerateSmall(*seed, *n)
		large := corpus.GenerateLarge(*seed, *n/2)
		bs, err := experiments.OverallCoverage(small, experiments.StandardFuzzers(), *iters, *seed)
		if err != nil {
			return err
		}
		experiments.PrintCoverageBars(os.Stdout, "Fig. 6 analog — overall coverage, small contracts", bs)
		bl, err := experiments.OverallCoverage(large, experiments.StandardFuzzers(), *iters*2, *seed)
		if err != nil {
			return err
		}
		experiments.PrintCoverageBars(os.Stdout, "Fig. 6 analog — overall coverage, large contracts", bl)
		return nil
	})

	run("table3", func() error {
		results, err := experiments.BugDetection(
			corpus.VulnSuite(), corpus.SafeSuite(),
			experiments.StandardTools(), *iters, *seed)
		if err != nil {
			return err
		}
		experiments.PrintDetectionTable(os.Stdout, results)
		return nil
	})

	run("fig7", func() error {
		small := corpus.GenerateSmall(*seed+100, *n)
		large := corpus.GenerateLarge(*seed+100, *n/2)
		rs, err := experiments.Ablation(small, *iters, *seed)
		if err != nil {
			return err
		}
		experiments.PrintAblation(os.Stdout, "Fig. 7 analog — ablation, small contracts (share of full MuFuzz)", rs)
		rl, err := experiments.Ablation(large, *iters*2, *seed)
		if err != nil {
			return err
		}
		experiments.PrintAblation(os.Stdout, "Fig. 7 analog — ablation, large contracts (share of full MuFuzz)", rl)
		return nil
	})

	run("table4", func() error {
		gens := corpus.GenerateComplex(*seed+200, *n/2)
		res, err := experiments.CaseStudy(gens, *iters*2, *seed)
		if err != nil {
			return err
		}
		experiments.PrintCaseStudy(os.Stdout, res)
		return nil
	})

	run("campaign", func() error {
		return campaignThroughput(*benchJS, *iters, *seed)
	})

	run("service", func() error {
		return serviceOverhead(*benchJS, *iters, *seed)
	})

	run("fleet", func() error {
		return fleetOverhead(*benchJS, *iters, *seed)
	})
}

// campaignRun is one measured configuration of the campaign throughput
// benchmark.
type campaignRun struct {
	// Timestamp (RFC 3339 UTC) orders the retained history; runs recorded
	// before the history schema have none and sort first.
	Timestamp    string  `json:"timestamp,omitempty"`
	Iterations   int     `json:"iterations,omitempty"`
	Workers      int     `json:"workers"`
	Campaigns    int     `json:"campaigns"`
	Executions   int     `json:"executions"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	ExecsPerSec  float64 `json:"execs_per_sec"`
	CoverageMean float64 `json:"coverage_mean"`
	// Allocation stats (runtime.MemStats deltas over the measured runs,
	// normalized per executed sequence) make memory-model changes — like the
	// copy-on-write state layer — visible in the perf trajectory alongside
	// throughput.
	AllocBytesPerExec float64 `json:"alloc_bytes_per_exec"`
	AllocsPerExec     float64 `json:"allocs_per_exec"`
	// ScalingEfficiency is this run's execs/s over the same invocation's
	// Workers=1 run, normalized by the worker count — 1.0 is perfectly linear
	// scaling, omitted on the Workers=1 row itself. Recorded per row so the
	// history shows how parallel efficiency trends across PRs at every
	// measured width.
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
}

// campaignBench is the BENCH_campaign.json schema.
type campaignBench struct {
	Benchmark  string `json:"benchmark"`
	Contract   string `json:"contract"`
	Iterations int    `json:"iterations"`
	NumCPU     int    `json:"num_cpu"`
	Seed       int64  `json:"seed"`
	// Runs is the retained measurement history: each benchtab invocation
	// APPENDS its timestamped measurements (one per worker count) instead of
	// overwriting, so the file records the perf trajectory across PRs. At
	// most maxRetainedRuns entries are kept, oldest dropped first.
	Runs []campaignRun `json:"runs"`
	// Speedup is the newest Workers=1 run's execs/s over the OLDEST retained
	// comparable baseline (same workers and iterations) — the cumulative
	// perf-trajectory multiplier, 1.0 when the file starts fresh.
	Speedup float64 `json:"speedup"`
	// ParallelSpeedup is execs/s at Workers=NumCPU over Workers=1 within the
	// newest invocation (0 when the machine is single-core).
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// Service is the scheduler-overhead measurement (-exp service): N
	// campaigns multiplexed through the campaign service's bounded slot
	// pool versus the same N run back to back on bare engines.
	Service *serviceBench `json:"service,omitempty"`
	// Fleet is the coordination-overhead measurement (-exp fleet): N
	// campaigns executed as leased slices through the fleet coordinator
	// on one worker versus the same N through the single-node service.
	Fleet *fleetBench `json:"fleet,omitempty"`
}

// serviceBench quantifies what the campaign-service scheduler costs: the
// same four campaigns run multiplexed (time-sliced over one slot, with
// snapshot-capable slice boundaries and status publication) and
// sequentially (bare fuzz.Run), in executions per second.
type serviceBench struct {
	Campaigns              int     `json:"campaigns"`
	Iterations             int     `json:"iterations"`
	Slots                  int     `json:"slots"`
	SliceRounds            int     `json:"slice_rounds"`
	SequentialExecsPerSec  float64 `json:"sequential_execs_per_sec"`
	MultiplexedExecsPerSec float64 `json:"multiplexed_execs_per_sec"`
	// OverheadPct is how much throughput multiplexing gives up relative to
	// sequential runs (negative = the scheduler was faster, e.g. warm
	// caches).
	OverheadPct float64 `json:"overhead_pct"`
}

// campaignThroughput measures end-to-end campaign executions/sec on the
// Crowdsale contract over the scaling matrix Workers ∈ {1, 2, 4, NumCPU}
// (deduplicated, capped at NumCPU) and writes the result as JSON, each
// multi-worker row annotated with its scaling efficiency.
// iterations is the per-campaign budget (the -iters flag); the JSON records
// it so trajectory comparisons only pair like with like.
// maxRetainedRuns bounds the trajectory history kept in the JSON; the oldest
// entries past the cap are dropped (but never the oldest comparable baseline
// the speedup is measured against, which by construction is among the
// retained prefix).
const maxRetainedRuns = 32

func campaignThroughput(path string, iterations int, seed int64) error {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		return err
	}
	const campaigns = 8

	// Load the existing trajectory so this invocation appends to the history
	// instead of erasing it.
	bench := campaignBench{}
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &bench)
	}
	if bench.Benchmark == "" {
		bench = campaignBench{Benchmark: "CampaignThroughput", Contract: "Crowdsale"}
	}
	bench.Iterations = iterations
	bench.NumCPU = runtime.NumCPU()
	bench.Seed = seed

	now := time.Now().UTC().Format(time.RFC3339)
	// Scaling matrix: workers ∈ {1, 2, 4, NumCPU}, deduplicated and capped at
	// the machine's core count (a width the scheduler must time-slice measures
	// contention, not scaling). Single-core machines measure only workers=1.
	workerCounts := []int{1}
	for _, w := range []int{2, 4, runtime.NumCPU()} {
		if w <= runtime.NumCPU() && w > workerCounts[len(workerCounts)-1] {
			workerCounts = append(workerCounts, w)
		}
	}
	var newRuns []campaignRun
	for _, workers := range workerCounts {
		var execs int
		var cov float64
		var msBefore, msAfter runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		for i := 0; i < campaigns; i++ {
			res := fuzz.Run(comp, fuzz.Options{
				Strategy:   fuzz.MuFuzz(),
				Seed:       seed + int64(i),
				Iterations: iterations,
				Workers:    workers,
			})
			execs += res.Executions
			cov += res.Coverage
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&msAfter)
		newRuns = append(newRuns, campaignRun{
			Timestamp:         now,
			Iterations:        iterations,
			Workers:           workers,
			Campaigns:         campaigns,
			Executions:        execs,
			ElapsedSec:        elapsed,
			ExecsPerSec:       float64(execs) / elapsed,
			CoverageMean:      cov / campaigns,
			AllocBytesPerExec: float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(execs),
			AllocsPerExec:     float64(msAfter.Mallocs-msBefore.Mallocs) / float64(execs),
		})
		if workers > 1 && newRuns[0].ExecsPerSec > 0 {
			r := &newRuns[len(newRuns)-1]
			r.ScalingEfficiency = r.ExecsPerSec / newRuns[0].ExecsPerSec / float64(workers)
		}
	}
	bench.Runs = append(bench.Runs, newRuns...)
	if len(bench.Runs) > maxRetainedRuns {
		bench.Runs = bench.Runs[len(bench.Runs)-maxRetainedRuns:]
	}

	// Trajectory speedup: newest Workers=1 run against the oldest retained
	// comparable baseline. Pre-history baselines recorded no per-run
	// iteration count; they ran at the file-level setting, so they compare
	// when that matches.
	bench.Speedup = 1
	if base := oldestComparable(bench.Runs, 1, iterations); base != nil && base.ExecsPerSec > 0 {
		bench.Speedup = newRuns[0].ExecsPerSec / base.ExecsPerSec
	}
	// ParallelSpeedup pairs the widest measured run against workers=1 within
	// this invocation (0 when the machine is single-core).
	bench.ParallelSpeedup = 0
	if len(newRuns) > 1 && newRuns[0].ExecsPerSec > 0 {
		bench.ParallelSpeedup = newRuns[len(newRuns)-1].ExecsPerSec / newRuns[0].ExecsPerSec
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench); err != nil {
		return err
	}
	for _, r := range newRuns {
		eff := ""
		if r.ScalingEfficiency > 0 {
			eff = fmt.Sprintf("  eff=%.2f", r.ScalingEfficiency)
		}
		fmt.Printf("  campaign throughput: workers=%d  %8.0f execs/s  %7.0f B/exec  %5.0f allocs/exec  (%.1f%% mean coverage)%s\n",
			r.Workers, r.ExecsPerSec, r.AllocBytesPerExec, r.AllocsPerExec, r.CoverageMean*100, eff)
	}
	fmt.Printf("  trajectory speedup %0.2fx vs oldest retained baseline; %d runs in history; JSON written to %s\n",
		bench.Speedup, len(bench.Runs), path)
	return nil
}

// oldestComparable returns the earliest retained run matching the given
// worker count and iteration budget (a zero Iterations on a legacy entry
// matches any budget — the pre-history schema recorded it only at file
// level).
func oldestComparable(runs []campaignRun, workers, iterations int) *campaignRun {
	for i := range runs {
		r := &runs[i]
		if r.Workers == workers && (r.Iterations == 0 || r.Iterations == iterations) {
			return r
		}
	}
	return nil
}

// serviceOverhead measures the campaign-service scheduler tax: four
// campaigns multiplexed over one service slot versus the same four run
// sequentially on bare engines. The result is merged into the existing
// BENCH_campaign.json (the service block rides along with the engine
// trajectory).
func serviceOverhead(path string, iterations int, seed int64) error {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		return err
	}
	const campaigns = 4
	const sliceRounds = 8

	// Sequential baseline: bare engines back to back.
	seqStart := time.Now()
	seqExecs := 0
	for i := 0; i < campaigns; i++ {
		res := fuzz.Run(comp, fuzz.Options{
			Strategy: fuzz.MuFuzz(), Seed: seed + int64(i), Iterations: iterations, Workers: 1,
		})
		seqExecs += res.Executions
	}
	seqRate := float64(seqExecs) / time.Since(seqStart).Seconds()

	// Multiplexed: the same campaigns through the service scheduler on one
	// slot (no store: measuring pure scheduling overhead, not disk I/O).
	svc := service.New(service.Config{Slots: 1, SliceRounds: sliceRounds, Workers: 1})
	if err := svc.Start(); err != nil {
		return err
	}
	defer svc.Close()
	muxStart := time.Now()
	for i := 0; i < campaigns; i++ {
		if _, err := svc.Submit(service.CampaignSpec{
			Source: corpus.Crowdsale(), Seed: seed + int64(i), Iterations: iterations,
		}); err != nil {
			return err
		}
	}
	muxExecs := 0
	for {
		done := 0
		muxExecs = 0
		for _, st := range svc.Statuses() {
			muxExecs += st.Executions
			if st.State == service.StateDone {
				done++
			}
		}
		if done == campaigns {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	muxRate := float64(muxExecs) / time.Since(muxStart).Seconds()

	// Merge into the existing trajectory file.
	bench := campaignBench{}
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &bench)
	}
	if bench.Benchmark == "" {
		bench = campaignBench{Benchmark: "CampaignThroughput", Contract: "Crowdsale",
			Iterations: iterations, NumCPU: runtime.NumCPU(), Seed: seed, Speedup: 1}
	}
	bench.Service = &serviceBench{
		Campaigns:              campaigns,
		Iterations:             iterations,
		Slots:                  1,
		SliceRounds:            sliceRounds,
		SequentialExecsPerSec:  seqRate,
		MultiplexedExecsPerSec: muxRate,
		OverheadPct:            100 * (1 - muxRate/seqRate),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench); err != nil {
		return err
	}
	fmt.Printf("  service scheduler: %d campaigns  sequential %8.0f execs/s  multiplexed %8.0f execs/s  overhead %.1f%%\n",
		campaigns, seqRate, muxRate, bench.Service.OverheadPct)
	fmt.Printf("  JSON merged into %s\n", path)
	return nil
}

// fleetBench quantifies what fleet coordination costs over the plain
// campaign service: the same campaigns executed as HTTP-leased slices —
// snapshot commit per slice, lease traffic, scheduling — on a single
// worker, versus the single-node service scheduler. The gated number runs
// without conformance transcripts (pure coordination, functionally equal
// to the service baseline); the recorded number adds the per-execution
// transcript chunks that buy the byte-identical migration proof, reported
// for visibility but not gated.
type fleetBench struct {
	Campaigns                int     `json:"campaigns"`
	Iterations               int     `json:"iterations"`
	Rounds                   int     `json:"rounds"`
	ServiceExecsPerSec       float64 `json:"service_execs_per_sec"`
	FleetExecsPerSec         float64 `json:"fleet_execs_per_sec"`
	OverheadPct              float64 `json:"overhead_pct"`
	FleetRecordedExecsPerSec float64 `json:"fleet_recorded_execs_per_sec"`
	RecordedOverheadPct      float64 `json:"recorded_overhead_pct"`
	GatePct                  float64 `json:"gate_pct"`
}

// fleetGatePct is the acceptance ceiling on fleet coordination overhead:
// distributing over one worker must cost less than this versus the plain
// service (the coordination tax a real fleet amortizes across nodes).
const fleetGatePct = 5.0

// fleetOverhead measures the fleet coordination tax and gates it. The
// result is merged into BENCH_campaign.json alongside the engine
// trajectory.
func fleetOverhead(path string, iterations int, seed int64) error {
	const campaigns = 4
	const sliceRounds = 8

	// Baseline: the single-node service scheduler, one slot, no store —
	// the fleet's own baseline semantics (time-sliced campaigns, snapshot
	// boundaries), minus the distribution layer.
	runService := func() (float64, error) {
		svc := service.New(service.Config{Slots: 1, SliceRounds: sliceRounds, Workers: 1})
		if err := svc.Start(); err != nil {
			return 0, err
		}
		defer svc.Close()
		start := time.Now()
		for i := 0; i < campaigns; i++ {
			if _, err := svc.Submit(service.CampaignSpec{
				Source: corpus.Crowdsale(), Seed: seed + int64(i), Iterations: iterations,
			}); err != nil {
				return 0, err
			}
		}
		execs := 0
		for {
			done := 0
			execs = 0
			for _, st := range svc.Statuses() {
				execs += st.Executions
				if st.State == service.StateDone {
					done++
				}
			}
			if done == campaigns {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		return float64(execs) / time.Since(start).Seconds(), nil
	}

	// Fleet: the same campaigns leased slice by slice over live HTTP to
	// one worker (no store: pure coordination overhead, not disk I/O).
	// Measured twice — without conformance transcripts (the gated number,
	// functionally equal to the service baseline) and with them (the price
	// of the migration proof, informational).
	runFleet := func(noTranscript bool) (float64, error) {
		co := fleet.NewCoordinator(fleet.CoordinatorConfig{Rounds: sliceRounds, DefaultIterations: iterations})
		srv := httptest.NewServer(co.Handler())
		defer srv.Close()
		client := fleet.NewClient(srv.URL, seed)
		ctx := context.Background()
		start := time.Now()
		var ids []string
		for i := 0; i < campaigns; i++ {
			st, err := client.Submit(ctx, fleet.SubmitRequest{
				NoTranscript: noTranscript,
				Spec: service.CampaignSpec{
					Source: corpus.Crowdsale(), Seed: seed + int64(i), Iterations: iterations,
				},
			})
			if err != nil {
				return 0, err
			}
			ids = append(ids, st.ID)
		}
		w := fleet.NewWorker("bench-worker", client)
		for {
			ran, err := w.RunOne(ctx)
			if err != nil {
				return 0, err
			}
			if ran {
				continue
			}
			// No lease granted: either all campaigns finished or a
			// transient lull — check, and only then idle.
			done := 0
			for _, id := range ids {
				st, err := client.Status(ctx, id)
				if err != nil {
					return 0, err
				}
				if st.State == "done" {
					done++
				}
			}
			if done == campaigns {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		execs := 0
		for _, id := range ids {
			st, err := client.Status(ctx, id)
			if err != nil {
				return 0, err
			}
			execs += st.Executions
		}
		return float64(execs) / time.Since(start).Seconds(), nil
	}
	// Both sides run the identical deterministic workload, so throughput
	// differences are pure scheduling/coordination cost plus machine noise.
	// Alternate the sides over several trials and keep each side's best
	// rate — best-of-N discards the noise (GC pauses, co-tenant CPU spikes)
	// that a single short trial on a shared machine cannot.
	const trials = 3
	var svcRate, fleetRate, recordedRate float64
	for t := 0; t < trials; t++ {
		r, err := runService()
		if err != nil {
			return err
		}
		svcRate = math.Max(svcRate, r)
		if r, err = runFleet(true); err != nil {
			return err
		}
		fleetRate = math.Max(fleetRate, r)
		if r, err = runFleet(false); err != nil {
			return err
		}
		recordedRate = math.Max(recordedRate, r)
	}

	overhead := 100 * (1 - fleetRate/svcRate)
	recordedOverhead := 100 * (1 - recordedRate/svcRate)

	// Merge into the existing trajectory file.
	bench := campaignBench{}
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &bench)
	}
	if bench.Benchmark == "" {
		bench = campaignBench{Benchmark: "CampaignThroughput", Contract: "Crowdsale",
			Iterations: iterations, NumCPU: runtime.NumCPU(), Seed: seed, Speedup: 1}
	}
	bench.Fleet = &fleetBench{
		Campaigns:                campaigns,
		Iterations:               iterations,
		Rounds:                   sliceRounds,
		ServiceExecsPerSec:       svcRate,
		FleetExecsPerSec:         fleetRate,
		OverheadPct:              overhead,
		FleetRecordedExecsPerSec: recordedRate,
		RecordedOverheadPct:      recordedOverhead,
		GatePct:                  fleetGatePct,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench); err != nil {
		return err
	}
	fmt.Printf("  fleet coordination: %d campaigns  service %8.0f execs/s  fleet %8.0f execs/s  overhead %.1f%% (gate <%.0f%%)\n",
		campaigns, svcRate, fleetRate, overhead, fleetGatePct)
	fmt.Printf("  with transcripts:   %36s fleet %8.0f execs/s  overhead %.1f%% (informational)\n",
		"", recordedRate, recordedOverhead)
	fmt.Printf("  JSON merged into %s\n", path)
	if overhead >= fleetGatePct {
		return fmt.Errorf("fleet coordination overhead %.1f%% breaches the %.0f%% gate", overhead, fleetGatePct)
	}
	return nil
}
