// Command benchtab regenerates every table and figure of the paper's
// evaluation section on the synthetic corpora.
//
// Usage:
//
//	benchtab -exp all
//	benchtab -exp fig5a|fig5b|fig6|table2|table3|fig7|table4|motivating
//	         [-n 24] [-iters 2500] [-seed 1]
//
// Absolute numbers differ from the paper (different corpora, different
// hardware); the comparisons — who wins, by roughly what factor — are the
// reproduction target. See EXPERIMENTS.md for the per-experiment analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mufuzz/internal/corpus"
	"mufuzz/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: all | fig5a | fig5b | fig6 | table2 | table3 | fig7 | table4 | motivating")
		n     = flag.Int("n", 24, "contracts per generated dataset")
		iters = flag.Int("iters", 2500, "fuzzing budget (sequence executions) per contract")
		seed  = flag.Int64("seed", 1, "corpus + campaign seed")
	)
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("  (%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table2", func() error {
		stats, err := experiments.Datasets(*seed, *n, *n/2, *n/2)
		if err != nil {
			return err
		}
		experiments.PrintDatasets(os.Stdout, stats)
		return nil
	})

	run("motivating", func() error {
		rows, err := experiments.Motivating(*iters, *seed)
		if err != nil {
			return err
		}
		experiments.PrintMotivating(os.Stdout, rows)
		return nil
	})

	run("fig5a", func() error {
		gens := corpus.GenerateSmall(*seed, *n)
		curves, err := experiments.CoverageOverTime(gens, experiments.StandardFuzzers(), *iters, *seed)
		if err != nil {
			return err
		}
		experiments.PrintCoverageCurves(os.Stdout,
			fmt.Sprintf("Fig. 5(a) analog — coverage over budget, %d small contracts", len(gens)), curves)
		return nil
	})

	run("fig5b", func() error {
		gens := corpus.GenerateLarge(*seed, *n/2)
		curves, err := experiments.CoverageOverTime(gens, experiments.StandardFuzzers(), *iters*2, *seed)
		if err != nil {
			return err
		}
		experiments.PrintCoverageCurves(os.Stdout,
			fmt.Sprintf("Fig. 5(b) analog — coverage over budget, %d large contracts", len(gens)), curves)
		return nil
	})

	run("fig6", func() error {
		small := corpus.GenerateSmall(*seed, *n)
		large := corpus.GenerateLarge(*seed, *n/2)
		bs, err := experiments.OverallCoverage(small, experiments.StandardFuzzers(), *iters, *seed)
		if err != nil {
			return err
		}
		experiments.PrintCoverageBars(os.Stdout, "Fig. 6 analog — overall coverage, small contracts", bs)
		bl, err := experiments.OverallCoverage(large, experiments.StandardFuzzers(), *iters*2, *seed)
		if err != nil {
			return err
		}
		experiments.PrintCoverageBars(os.Stdout, "Fig. 6 analog — overall coverage, large contracts", bl)
		return nil
	})

	run("table3", func() error {
		results, err := experiments.BugDetection(
			corpus.VulnSuite(), corpus.SafeSuite(),
			experiments.StandardTools(), *iters, *seed)
		if err != nil {
			return err
		}
		experiments.PrintDetectionTable(os.Stdout, results)
		return nil
	})

	run("fig7", func() error {
		small := corpus.GenerateSmall(*seed+100, *n)
		large := corpus.GenerateLarge(*seed+100, *n/2)
		rs, err := experiments.Ablation(small, *iters, *seed)
		if err != nil {
			return err
		}
		experiments.PrintAblation(os.Stdout, "Fig. 7 analog — ablation, small contracts (share of full MuFuzz)", rs)
		rl, err := experiments.Ablation(large, *iters*2, *seed)
		if err != nil {
			return err
		}
		experiments.PrintAblation(os.Stdout, "Fig. 7 analog — ablation, large contracts (share of full MuFuzz)", rl)
		return nil
	})

	run("table4", func() error {
		gens := corpus.GenerateComplex(*seed+200, *n/2)
		res, err := experiments.CaseStudy(gens, *iters*2, *seed)
		if err != nil {
			return err
		}
		experiments.PrintCaseStudy(os.Stdout, res)
		return nil
	})
}
